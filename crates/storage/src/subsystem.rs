//! The storage subsystem facade: every external device of one
//! simulated configuration.

use dbshare_model::{NodeId, PageId, StorageAllocation, SystemConfig};
use desim::lru::LruCache;
use desim::{MultiServer, SimDuration, SimTime};

/// How a page access was served — used for statistics and for the
/// engine to decide CPU overhead (3000 instructions per disk I/O, 300
/// for GEM I/O, Table 4.1) and synchrony (GEM accesses keep the CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Served by a magnetic disk (16.4 ms average unqueued).
    DbDisk,
    /// Hit in a shared disk cache (1.4 ms: controller + transfer).
    DiskCacheHit,
    /// Write absorbed by a non-volatile disk cache (1.4 ms).
    NvCacheWrite,
    /// Served by GEM (50 µs, synchronous — CPU held).
    Gem,
    /// Log disk write (6.4 ms).
    LogDisk,
}

impl AccessClass {
    /// True if the access is synchronous (the CPU stays busy until the
    /// device completes — only GEM accesses qualify, §2).
    pub const fn is_synchronous(self) -> bool {
        matches!(self, AccessClass::Gem)
    }
}

/// Outcome of a storage operation: what served it and when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// Completion instant (including queueing).
    pub done: SimTime,
    /// Device class that served the request.
    pub class: AccessClass,
}

/// One partition's backing store.
///
/// Pages are striped across the array *page-affinely* (`page % disks`),
/// so accesses to the same page serialize on the same device — exactly
/// as on real hardware. This matters for correctness: a read issued
/// while a write-back of the same page is in flight queues behind it
/// and therefore observes the new version.
#[derive(Debug)]
struct PartStore {
    alloc: StorageAllocation,
    /// Disk array, one single-server station per disk (absent for
    /// GEM-resident partitions).
    disks: Vec<MultiServer>,
    /// Controller path for cached arrays (serves cache hits).
    controller: Option<MultiServer>,
    /// Cache directory: page number -> () (contents are irrelevant to
    /// timing; presence is what matters).
    cache: Option<LruCache<u64, ()>>,
    nonvolatile: bool,
    reads: u64,
    read_hits: u64,
    writes: u64,
}

impl PartStore {
    fn disk_for(&mut self, page: PageId) -> &mut MultiServer {
        let n = self.disks.len() as u64;
        debug_assert!(n > 0, "disk access on diskless partition");
        let idx = (page.number() % n) as usize;
        &mut self.disks[idx]
    }
}

fn disk_array(disks: u32) -> Vec<MultiServer> {
    (0..disks).map(|_| MultiServer::new(1)).collect()
}

/// All external devices of one configuration (§3.3).
///
/// The engine calls these methods while processing an event at `now`;
/// each returns the completion instant for the caller to schedule a
/// follow-up event. Device statistics accumulate internally.
#[derive(Debug)]
pub struct StorageSubsystem {
    parts: Vec<PartStore>,
    /// Per-node log disk groups.
    log: Vec<MultiServer>,
    gem: MultiServer,
    lock_engine: MultiServer,
    lock_engine_time: SimDuration,
    network: MultiServer,
    db_disk_time: SimDuration,
    cache_hit_time: SimDuration,
    log_time: SimDuration,
    gem_page_time: SimDuration,
    gem_entry_time: SimDuration,
    bandwidth_mb_s: f64,
    log_in_gem: bool,
    gem_page_ops: u64,
    gem_entry_ops: u64,
    messages: u64,
    stats_since: SimTime,
}

impl StorageSubsystem {
    /// Builds every device from the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (callers run
    /// [`SystemConfig::validate`] first).
    pub fn new(cfg: &SystemConfig) -> Self {
        let d = &cfg.disk;
        let parts = cfg
            .partitions
            .iter()
            .map(|p| match p.storage {
                StorageAllocation::Disk { disks } => PartStore {
                    alloc: p.storage.clone(),
                    disks: disk_array(disks),
                    controller: None,
                    cache: None,
                    nonvolatile: false,
                    reads: 0,
                    read_hits: 0,
                    writes: 0,
                },
                StorageAllocation::CachedDisk {
                    disks,
                    cache_pages,
                    nonvolatile,
                } => PartStore {
                    alloc: p.storage.clone(),
                    disks: disk_array(disks),
                    // The controller path is wide: hits cost 1.4 ms of
                    // service but several can overlap (one port per
                    // 2 disks, at least 2).
                    controller: Some(MultiServer::new((disks / 2).max(2))),
                    cache: Some(LruCache::new(cache_pages as usize)),
                    nonvolatile,
                    reads: 0,
                    read_hits: 0,
                    writes: 0,
                },
                StorageAllocation::Gem => PartStore {
                    alloc: p.storage.clone(),
                    disks: Vec::new(),
                    controller: None,
                    cache: None,
                    nonvolatile: true,
                    reads: 0,
                    read_hits: 0,
                    writes: 0,
                },
                StorageAllocation::WriteBufferedDisk {
                    disks,
                    buffer_pages,
                } => PartStore {
                    alloc: p.storage.clone(),
                    disks: disk_array(disks),
                    controller: None,
                    cache: Some(LruCache::new(buffer_pages as usize)),
                    nonvolatile: true,
                    reads: 0,
                    read_hits: 0,
                    writes: 0,
                },
            })
            .collect();
        StorageSubsystem {
            parts,
            log: (0..cfg.nodes)
                .map(|_| MultiServer::new(d.log_disks_per_node))
                .collect(),
            gem: MultiServer::new(cfg.gem.servers),
            lock_engine: MultiServer::new(cfg.lock_engine.servers),
            lock_engine_time: SimDuration::from_micros_f64(cfg.lock_engine.op_service_us),
            network: MultiServer::new(1),
            db_disk_time: SimDuration::from_millis_f64(
                d.db_disk_ms + d.controller_ms + d.transfer_ms,
            ),
            cache_hit_time: SimDuration::from_millis_f64(d.controller_ms + d.transfer_ms),
            log_time: SimDuration::from_millis_f64(d.log_disk_ms + d.controller_ms + d.transfer_ms),
            gem_page_time: cfg.gem_page_time(),
            gem_entry_time: cfg.gem_entry_time(),
            bandwidth_mb_s: cfg.comm.bandwidth_mb_per_s,
            log_in_gem: cfg.log_storage == dbshare_model::LogStorage::Gem,
            gem_page_ops: 0,
            gem_entry_ops: 0,
            messages: 0,
            stats_since: SimTime::ZERO,
        }
    }

    /// Reads `page` from its backing store.
    ///
    /// For cached arrays the cache directory decides hit or miss (the
    /// page is staged into the cache on a miss, per \[Gr89\]).
    pub fn read_page(&mut self, now: SimTime, page: PageId) -> Served {
        let part = &mut self.parts[page.partition().index()];
        part.reads += 1;
        match part.alloc {
            StorageAllocation::Gem => {
                self.gem_page_ops += 1;
                Served {
                    done: self.gem.offer(now, self.gem_page_time),
                    class: AccessClass::Gem,
                }
            }
            StorageAllocation::Disk { .. } => Served {
                done: {
                    let t = self.db_disk_time;
                    part.disk_for(page).offer(now, t)
                },
                class: AccessClass::DbDisk,
            },
            StorageAllocation::CachedDisk { .. } => {
                let cache = part.cache.as_mut().expect("cached allocation has cache");
                if cache.get(&page.number()).is_some() {
                    part.read_hits += 1;
                    Served {
                        done: part
                            .controller
                            .as_mut()
                            .expect("cached allocation has controller")
                            .offer(now, self.cache_hit_time),
                        class: AccessClass::DiskCacheHit,
                    }
                } else {
                    // Stage the page into the cache; a dirty NV page
                    // never gets evicted un-destaged because destaging
                    // is immediate (see `write_page`).
                    cache.insert(page.number(), ());
                    Served {
                        done: {
                            let t = self.db_disk_time;
                            part.disk_for(page).offer(now, t)
                        },
                        class: AccessClass::DbDisk,
                    }
                }
            }
            StorageAllocation::WriteBufferedDisk { .. } => {
                let cache = part.cache.as_mut().expect("write buffer exists");
                if cache.get(&page.number()).is_some() {
                    // Recently written: served from the GEM write buffer.
                    part.read_hits += 1;
                    self.gem_page_ops += 1;
                    Served {
                        done: self.gem.offer(now, self.gem_page_time),
                        class: AccessClass::Gem,
                    }
                } else {
                    Served {
                        done: {
                            let t = self.db_disk_time;
                            part.disk_for(page).offer(now, t)
                        },
                        class: AccessClass::DbDisk,
                    }
                }
            }
        }
    }

    /// Writes `page` to its backing store, returning when the write is
    /// *visible* (durable for FORCE purposes).
    ///
    /// * GEM-resident partitions: 50 µs synchronous GEM page write.
    /// * Non-volatile caches: 1.4 ms into the cache; the disk copy is
    ///   updated asynchronously (the destage I/O is accounted on the
    ///   array but does not delay the caller).
    /// * Volatile caches: the disk write is synchronous (only reads can
    ///   be served from a volatile cache), but the cache copy is
    ///   refreshed so later readers of any node hit.
    /// * Plain disks: a 16.4 ms disk write.
    pub fn write_page(&mut self, now: SimTime, page: PageId) -> Served {
        let part = &mut self.parts[page.partition().index()];
        part.writes += 1;
        match part.alloc {
            StorageAllocation::Gem => {
                self.gem_page_ops += 1;
                Served {
                    done: self.gem.offer(now, self.gem_page_time),
                    class: AccessClass::Gem,
                }
            }
            StorageAllocation::Disk { .. } => Served {
                done: {
                    let t = self.db_disk_time;
                    part.disk_for(page).offer(now, t)
                },
                class: AccessClass::DbDisk,
            },
            StorageAllocation::CachedDisk { .. } => {
                let nonvolatile = part.nonvolatile;
                let cache = part.cache.as_mut().expect("cached allocation has cache");
                cache.insert(page.number(), ());
                if nonvolatile {
                    let done = part
                        .controller
                        .as_mut()
                        .expect("cached allocation has controller")
                        .offer(now, self.cache_hit_time);
                    // Asynchronous destage: occupies the array but the
                    // caller does not wait.
                    let t = self.db_disk_time;
                    part.disk_for(page).offer(now, t);
                    Served {
                        done,
                        class: AccessClass::NvCacheWrite,
                    }
                } else {
                    Served {
                        done: {
                            let t = self.db_disk_time;
                            part.disk_for(page).offer(now, t)
                        },
                        class: AccessClass::DbDisk,
                    }
                }
            }
            StorageAllocation::WriteBufferedDisk { .. } => {
                // §2 usage form 2: the write lands in the non-volatile
                // GEM buffer (~50 µs) and destages asynchronously. The
                // short CPU-held window is folded into the queued GEM
                // access (its 50 µs is negligible against the 300-
                // instruction initiation).
                let cache = part.cache.as_mut().expect("write buffer exists");
                cache.insert(page.number(), ());
                self.gem_page_ops += 1;
                let done = self.gem.offer(now, self.gem_page_time);
                let t = self.db_disk_time;
                part.disk_for(page).offer(now, t); // async destage
                Served {
                    done,
                    class: AccessClass::Gem,
                }
            }
        }
    }

    /// Appends one page to `node`'s log (commit phase 1, §3.2). With
    /// [`LogStorage::Gem`](dbshare_model::LogStorage) the record goes to
    /// GEM instead of the node's log disks (§2 extension).
    pub fn write_log(&mut self, now: SimTime, node: NodeId) -> Served {
        if self.log_in_gem {
            self.gem_page_ops += 1;
            return Served {
                done: self.gem.offer(now, self.gem_page_time),
                class: AccessClass::Gem,
            };
        }
        Served {
            done: self.log[node.index()].offer(now, self.log_time),
            class: AccessClass::LogDisk,
        }
    }

    /// True if the commit log is GEM-resident.
    pub fn log_is_gem(&self) -> bool {
        self.log_in_gem
    }

    /// True if writes to `page` complete in GEM (GEM-resident partition
    /// or a GEM write buffer in front of the disks).
    pub fn write_goes_to_gem(&self, page: PageId) -> bool {
        matches!(
            self.parts[page.partition().index()].alloc,
            StorageAllocation::Gem | StorageAllocation::WriteBufferedDisk { .. }
        )
    }

    /// Performs `count` synchronous GEM *entry* accesses (global lock
    /// table reads and Compare&Swap writes). The accesses are issued
    /// back-to-back, which on the FIFO GEM server is equivalent to one
    /// request of `count ×` the entry time.
    pub fn gem_entries(&mut self, now: SimTime, count: u32) -> SimTime {
        self.gem_entry_ops += count as u64;
        self.gem.offer(now, self.gem_entry_time * count as u64)
    }

    /// Performs `count` synchronous GEM *page* accesses back-to-back
    /// (equivalent to one request of `count ×` the page time).
    pub fn gem_pages(&mut self, now: SimTime, count: u32) -> SimTime {
        self.gem_page_ops += count as u64;
        self.gem.offer(now, self.gem_page_time * count as u64)
    }

    /// Performs `count` lock operations on the central lock engine
    /// (\[Yu87\] comparison, §5): same protocol as the GEM global lock
    /// table, 100–500 µs per operation instead of 2 µs.
    pub fn lock_engine_ops(&mut self, now: SimTime, count: u32) -> SimTime {
        self.lock_engine
            .offer(now, self.lock_engine_time * count as u64)
    }

    /// Transfers one page through GEM (the `PageTransferMode::Gem`
    /// extension: writer stores the page, reader fetches it).
    pub fn gem_page_op(&mut self, now: SimTime) -> SimTime {
        self.gem_page_ops += 1;
        self.gem.offer(now, self.gem_page_time)
    }

    /// Sends `bytes` over the interconnection network; returns delivery
    /// time (transmission only — CPU send/receive overhead is charged
    /// by the engine on the nodes' CPUs).
    pub fn send(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.messages += 1;
        let wire = SimDuration::from_secs_f64(bytes as f64 / (self.bandwidth_mb_s * 1e6));
        self.network.offer(now, wire)
    }

    /// True if pages of `page`'s partition live in GEM (synchronous
    /// access, 300-instruction I/O initiation).
    pub fn is_gem_resident(&self, page: PageId) -> bool {
        matches!(
            self.parts[page.partition().index()].alloc,
            StorageAllocation::Gem
        )
    }

    /// Restarts device statistics windows (end of warm-up).
    pub fn reset_stats(&mut self, now: SimTime) {
        for p in &mut self.parts {
            for d in &mut p.disks {
                d.reset_stats(now);
            }
            if let Some(c) = p.controller.as_mut() {
                c.reset_stats(now);
            }
            p.reads = 0;
            p.read_hits = 0;
            p.writes = 0;
        }
        for l in &mut self.log {
            l.reset_stats(now);
        }
        self.gem.reset_stats(now);
        self.lock_engine.reset_stats(now);
        self.network.reset_stats(now);
        self.gem_page_ops = 0;
        self.gem_entry_ops = 0;
        self.messages = 0;
        self.stats_since = now;
    }

    /// Cumulative busy-time snapshot of every device class, for
    /// windowed utilization sampling: difference two snapshots and
    /// divide by `window × servers`. Busy time accrues at *issue* time
    /// (see [`MultiServer::offer`]), so a request is attributed to the
    /// window it was issued in.
    pub fn busy_snapshot(&self) -> DeviceBusySnapshot {
        let mut disk_busy = SimDuration::ZERO;
        let mut disk_servers = 0u32;
        for p in &self.parts {
            for d in &p.disks {
                disk_busy += d.busy_time();
                disk_servers += d.servers();
            }
            if let Some(c) = p.controller.as_ref() {
                disk_busy += c.busy_time();
                disk_servers += c.servers();
            }
        }
        let mut log_busy = SimDuration::ZERO;
        let mut log_servers = 0u32;
        for l in &self.log {
            log_busy += l.busy_time();
            log_servers += l.servers();
        }
        DeviceBusySnapshot {
            gem_busy: self.gem.busy_time(),
            gem_servers: self.gem.servers(),
            network_busy: self.network.busy_time(),
            network_servers: self.network.servers(),
            log_busy,
            log_servers,
            disk_busy,
            disk_servers,
        }
    }

    /// Device utilization and traffic report over the statistics window.
    pub fn report(&self, now: SimTime) -> DeviceReport {
        let since = self.stats_since;
        DeviceReport {
            gem_utilization: self.gem.utilization_since(since, now),
            lock_engine_utilization: self.lock_engine.utilization_since(since, now),
            network_utilization: self.network.utilization_since(since, now),
            gem_page_ops: self.gem_page_ops,
            gem_entry_ops: self.gem_entry_ops,
            messages: self.messages,
            partitions: self
                .parts
                .iter()
                .map(|p| PartitionTraffic {
                    reads: p.reads,
                    read_hits: p.read_hits,
                    writes: p.writes,
                    disk_utilization: if p.disks.is_empty() {
                        0.0
                    } else {
                        p.disks
                            .iter()
                            .map(|d| d.utilization_since(since, now))
                            .sum::<f64>()
                            / p.disks.len() as f64
                    },
                })
                .collect(),
            log_utilization: self
                .log
                .iter()
                .map(|l| l.utilization_since(since, now))
                .collect(),
        }
    }
}

/// Cumulative busy-time totals per device class (see
/// [`StorageSubsystem::busy_snapshot`]). Durations are exact integer
/// nanoseconds, so differencing snapshots is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceBusySnapshot {
    /// GEM server busy time.
    pub gem_busy: SimDuration,
    /// GEM server count.
    pub gem_servers: u32,
    /// Network busy time.
    pub network_busy: SimDuration,
    /// Network server count.
    pub network_servers: u32,
    /// Summed log-disk busy time across nodes.
    pub log_busy: SimDuration,
    /// Total log-disk servers across nodes.
    pub log_servers: u32,
    /// Summed database-disk (and cache-controller) busy time.
    pub disk_busy: SimDuration,
    /// Total database-disk (and controller) servers.
    pub disk_servers: u32,
}

/// Traffic counters for one partition's store.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionTraffic {
    /// Page reads served.
    pub reads: u64,
    /// Reads that hit a disk cache.
    pub read_hits: u64,
    /// Page writes served.
    pub writes: u64,
    /// Utilization of the disk array.
    pub disk_utilization: f64,
}

/// Snapshot of device statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// GEM server utilization (the paper reports <2% at 1000 TPS).
    pub gem_utilization: f64,
    /// Lock-engine utilization (0 unless `CouplingMode::LockEngine`).
    pub lock_engine_utilization: f64,
    /// Network utilization.
    pub network_utilization: f64,
    /// GEM page operations performed.
    pub gem_page_ops: u64,
    /// GEM entry operations performed.
    pub gem_entry_ops: u64,
    /// Messages transmitted.
    pub messages: u64,
    /// Per-partition traffic.
    pub partitions: Vec<PartitionTraffic>,
    /// Per-node log-disk utilization.
    pub log_utilization: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbshare_model::{PartitionConfig, PartitionId};

    fn cfg_with(storage: StorageAllocation) -> SystemConfig {
        let mut cfg = SystemConfig::debit_credit(2);
        cfg.partitions.push(PartitionConfig {
            name: "P".into(),
            pages: 1_000,
            locking: true,
            storage,
        });
        cfg
    }

    fn page(n: u64) -> PageId {
        PageId::new(PartitionId::new(0), n)
    }

    #[test]
    fn disk_read_takes_16_4_ms() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::disk(2)));
        let r = s.read_page(SimTime::ZERO, page(1));
        assert_eq!(r.class, AccessClass::DbDisk);
        assert_eq!(r.done, SimTime::from_micros(16_400));
        assert!(!r.class.is_synchronous());
    }

    #[test]
    fn disk_array_queues_when_busy() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::disk(1)));
        let a = s.read_page(SimTime::ZERO, page(1));
        let b = s.read_page(SimTime::ZERO, page(2));
        assert_eq!(b.done, a.done + SimDuration::from_micros(16_400));
    }

    #[test]
    fn gem_resident_read_takes_50_us_sync() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::Gem));
        let r = s.read_page(SimTime::ZERO, page(1));
        assert_eq!(r.class, AccessClass::Gem);
        assert_eq!(r.done, SimTime::from_micros(50));
        assert!(r.class.is_synchronous());
        assert!(s.is_gem_resident(page(0)));
    }

    #[test]
    fn cache_miss_then_hit() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::CachedDisk {
            disks: 2,
            cache_pages: 10,
            nonvolatile: false,
        }));
        let miss = s.read_page(SimTime::ZERO, page(1));
        assert_eq!(miss.class, AccessClass::DbDisk);
        let hit = s.read_page(miss.done, page(1));
        assert_eq!(hit.class, AccessClass::DiskCacheHit);
        assert_eq!(hit.done - miss.done, SimDuration::from_micros(1_400));
        let rep = s.report(hit.done);
        assert_eq!(rep.partitions[0].reads, 2);
        assert_eq!(rep.partitions[0].read_hits, 1);
    }

    #[test]
    fn cache_lru_eviction() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::CachedDisk {
            disks: 2,
            cache_pages: 2,
            nonvolatile: false,
        }));
        let mut t = SimTime::ZERO;
        for n in [1u64, 2, 3] {
            t = s.read_page(t, page(n)).done;
        }
        // page 1 was evicted by page 3
        let r = s.read_page(t, page(1));
        assert_eq!(r.class, AccessClass::DbDisk);
        // page 3 still cached
        let r = s.read_page(r.done, page(3));
        assert_eq!(r.class, AccessClass::DiskCacheHit);
    }

    #[test]
    fn nv_cache_absorbs_writes() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::CachedDisk {
            disks: 2,
            cache_pages: 10,
            nonvolatile: true,
        }));
        let w = s.write_page(SimTime::ZERO, page(5));
        assert_eq!(w.class, AccessClass::NvCacheWrite);
        assert_eq!(w.done, SimTime::from_micros(1_400));
        // subsequent read hits the cache
        let r = s.read_page(w.done, page(5));
        assert_eq!(r.class, AccessClass::DiskCacheHit);
        // the destage occupied the array
        let rep = s.report(SimTime::from_millis(100));
        assert!(rep.partitions[0].disk_utilization > 0.0);
    }

    #[test]
    fn volatile_cache_write_goes_to_disk_but_updates_cache() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::CachedDisk {
            disks: 2,
            cache_pages: 10,
            nonvolatile: false,
        }));
        let w = s.write_page(SimTime::ZERO, page(5));
        assert_eq!(w.class, AccessClass::DbDisk); // full disk latency
        let r = s.read_page(w.done, page(5));
        assert_eq!(r.class, AccessClass::DiskCacheHit); // global buffer effect
    }

    #[test]
    fn log_write_takes_6_4_ms_per_node() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::disk(1)));
        let w = s.write_log(SimTime::ZERO, NodeId::new(1));
        assert_eq!(w.class, AccessClass::LogDisk);
        assert_eq!(w.done, SimTime::from_micros(6_400));
    }

    #[test]
    fn gem_entries_serialize_on_server() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::disk(1)));
        let done = s.gem_entries(SimTime::ZERO, 2);
        assert_eq!(done, SimTime::from_micros(4));
        // utilization visible
        let rep = s.report(SimTime::from_micros(400));
        assert!(
            (rep.gem_utilization - 0.01).abs() < 1e-6,
            "{}",
            rep.gem_utilization
        );
        assert_eq!(rep.gem_entry_ops, 2);
    }

    #[test]
    fn network_transmission_times() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::disk(1)));
        // 100 B at 10 MB/s = 10 µs
        assert_eq!(s.send(SimTime::ZERO, 100), SimTime::from_micros(10));
        // 4 KB queued behind it: 10 µs + 409.6 µs
        assert_eq!(s.send(SimTime::ZERO, 4096).as_nanos(), 10_000 + 409_600);
        assert_eq!(s.report(SimTime::from_millis(1)).messages, 2);
    }

    #[test]
    fn write_buffered_disk_absorbs_writes_in_gem() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::WriteBufferedDisk {
            disks: 2,
            buffer_pages: 8,
        }));
        assert!(s.write_goes_to_gem(page(1)));
        assert!(!s.is_gem_resident(page(1)));
        let w = s.write_page(SimTime::ZERO, page(1));
        assert_eq!(w.class, AccessClass::Gem);
        assert_eq!(w.done, SimTime::from_micros(50));
        // a read of the recently written page hits the buffer
        let r = s.read_page(w.done, page(1));
        assert_eq!(r.class, AccessClass::Gem);
        // an unrelated page reads from disk
        let r2 = s.read_page(r.done, page(2));
        assert_eq!(r2.class, AccessClass::DbDisk);
        // the destage occupied the disk array
        let rep = s.report(SimTime::from_millis(100));
        assert!(rep.partitions[0].disk_utilization > 0.0);
    }

    #[test]
    fn write_buffer_evicts_lru_entries() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::WriteBufferedDisk {
            disks: 2,
            buffer_pages: 2,
        }));
        let mut t = SimTime::ZERO;
        for n in [1u64, 3, 5] {
            t = s.write_page(t, page(n)).done;
        }
        // page 1 fell out of the (destaged) buffer: read goes to disk
        assert_eq!(s.read_page(t, page(1)).class, AccessClass::DbDisk);
        assert_eq!(s.read_page(t, page(5)).class, AccessClass::Gem);
    }

    #[test]
    fn gem_log_replaces_log_disks() {
        let mut cfg = cfg_with(StorageAllocation::disk(1));
        cfg.log_storage = dbshare_model::LogStorage::Gem;
        let mut s = StorageSubsystem::new(&cfg);
        assert!(s.log_is_gem());
        let w = s.write_log(SimTime::ZERO, NodeId::new(0));
        assert_eq!(w.class, AccessClass::Gem);
        assert_eq!(w.done, SimTime::from_micros(50));
        let rep = s.report(SimTime::from_millis(1));
        assert_eq!(rep.log_utilization[0], 0.0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut s = StorageSubsystem::new(&cfg_with(StorageAllocation::disk(1)));
        s.read_page(SimTime::ZERO, page(1));
        s.reset_stats(SimTime::from_millis(50));
        let rep = s.report(SimTime::from_millis(100));
        assert_eq!(rep.partitions[0].reads, 0);
        assert_eq!(rep.partitions[0].disk_utilization, 0.0);
    }
}
