//! The debit-credit (TPC-A/B-style) workload of §3.1 / Table 4.1.
//!
//! Four record types — ACCOUNT, BRANCH, TELLER, HISTORY — with BRANCH
//! and TELLER clustered into a single partition (the configuration used
//! in all of the paper's experiments), so each transaction touches
//! three pages: an ACCOUNT page, a HISTORY page (sequential append),
//! and the BRANCH/TELLER page of its branch. The database scales with
//! the aggregate transaction rate as required by the TPC benchmarks.

use crate::Workload;
use dbshare_model::gla::{GlaMap, PartitionGla};
use dbshare_model::{
    NodeId, PageId, PageRef, PartitionConfig, PartitionId, RoutingStrategy, StorageAllocation,
    TxnSpec, TxnTypeId,
};
use desim::dist::Zipf;
use desim::Rng;

/// Partition index of the clustered BRANCH/TELLER file (clustered
/// layout; in the unclustered layout this slot holds BRANCH alone).
pub const BT: PartitionId = PartitionId::new(0);
/// Partition index of the ACCOUNT file.
pub const ACCOUNT: PartitionId = PartitionId::new(1);
/// Partition index of the HISTORY file.
pub const HISTORY: PartitionId = PartitionId::new(2);
/// Partition index of the separate TELLER file (unclustered layout
/// only, §3.1).
pub const TELLER: PartitionId = PartitionId::new(3);
/// TELLER records per page (Table 4.1: blocking factor 10).
pub const TELLER_BLOCKING: u64 = 10;
/// Tellers per branch (Table 4.1: 1000 tellers per 100 branches).
pub const TELLERS_PER_BRANCH: u64 = 10;

/// Records per ACCOUNT page (Table 4.1: blocking factor 10).
pub const ACCOUNT_BLOCKING: u64 = 10;
/// Records per HISTORY page (Table 4.1: blocking factor 20).
pub const HISTORY_BLOCKING: u64 = 20;
/// Branches per 100 TPS of aggregate rate (Table 4.1).
pub const BRANCHES_PER_100TPS: u64 = 100;
/// Accounts per 100 TPS of aggregate rate (Table 4.1: 10 million).
pub const ACCOUNTS_PER_100TPS: u64 = 10_000_000;
/// Fraction of ACCOUNT accesses that hit the transaction's own branch
/// (TPC requirement, §3.1: 85%).
pub const LOCAL_BRANCH_FRACTION: f64 = 0.85;

/// Static geometry of a scaled debit-credit database.
///
/// ```rust
/// use dbshare_workload::debit_credit::DebitCredit;
/// let dc = DebitCredit::new(4, 100.0); // 4 nodes × 100 TPS
/// assert_eq!(dc.branches(), 400);
/// assert_eq!(dc.account_pages(), 4_000_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DebitCredit {
    nodes: u16,
    branches: u64,
    accounts: u64,
}

impl DebitCredit {
    /// Builds the geometry for `nodes` nodes at `tps_per_node`
    /// transactions per second each. The database size scales
    /// proportionally with the aggregate rate (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or the rate is not positive.
    pub fn new(nodes: u16, tps_per_node: f64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(tps_per_node > 0.0, "rate must be positive");
        let scale = nodes as f64 * tps_per_node / 100.0;
        let branches = ((BRANCHES_PER_100TPS as f64 * scale).round() as u64).max(nodes as u64);
        // Exactly 100,000 accounts per branch (Table 4.1: 10M accounts
        // per 100 branches), so the geometry identities hold for any
        // fractional scale.
        let accounts = branches * (ACCOUNTS_PER_100TPS / BRANCHES_PER_100TPS);
        DebitCredit {
            nodes,
            branches,
            accounts,
        }
    }

    /// Builds a geometry with an explicit account count instead of the
    /// Table 4.1 rate coupling: one branch per node, accounts divided
    /// evenly over branches and rounded down to whole ACCOUNT pages.
    /// The scale scenarios use this to run a 200-node system against a
    /// million-account database without the benchmark's rate-scaled
    /// 100,000 accounts per branch (which would dwarf RAM before the
    /// coupling questions under study even arise).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or there is less than one account page
    /// per branch.
    pub fn with_accounts(nodes: u16, accounts: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        let branches = nodes as u64;
        let per_branch = accounts / branches / ACCOUNT_BLOCKING * ACCOUNT_BLOCKING;
        assert!(
            per_branch > 0,
            "need at least {ACCOUNT_BLOCKING} accounts per branch"
        );
        DebitCredit {
            nodes,
            branches,
            accounts: branches * per_branch,
        }
    }

    /// Number of nodes the geometry was scaled for.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Total branches (one BRANCH/TELLER page each, due to clustering).
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Total accounts.
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    /// Accounts per branch.
    pub fn accounts_per_branch(&self) -> u64 {
        self.accounts / self.branches
    }

    /// ACCOUNT pages (blocking factor 10). Account pages are laid out
    /// branch-contiguously: all pages of branch `b` precede those of
    /// branch `b+1`, which makes branch-ranged GLA allocation exact.
    pub fn account_pages(&self) -> u64 {
        self.accounts / ACCOUNT_BLOCKING
    }

    /// ACCOUNT pages per branch.
    pub fn account_pages_per_branch(&self) -> u64 {
        self.accounts_per_branch() / ACCOUNT_BLOCKING
    }

    /// BRANCH/TELLER pages (clustered: one page per branch).
    pub fn bt_pages(&self) -> u64 {
        self.branches
    }

    /// The node that owns branch `b` under affinity-based routing
    /// (contiguous equal ranges, §3.1).
    pub fn branch_node(&self, branch: u64) -> NodeId {
        debug_assert!(branch < self.branches);
        NodeId::new((branch as u128 * self.nodes as u128 / self.branches as u128) as u16)
    }

    /// The BRANCH/TELLER page of branch `b`.
    pub fn bt_page(&self, branch: u64) -> PageId {
        PageId::new(BT, branch)
    }

    /// The ACCOUNT page holding `account`.
    pub fn account_page(&self, account: u64) -> PageId {
        PageId::new(ACCOUNT, account / ACCOUNT_BLOCKING)
    }

    /// The branch an account belongs to.
    pub fn account_branch(&self, account: u64) -> u64 {
        account / self.accounts_per_branch()
    }

    /// The database layout with the default "sufficient disks" storage
    /// allocation (§4.2 allocates enough disks to avoid I/O
    /// bottlenecks; we scale arrays with the aggregate rate).
    pub fn partitions(&self, tps_per_node: f64) -> Vec<PartitionConfig> {
        let hundreds = ((self.nodes as f64 * tps_per_node) / 100.0).ceil() as u32;
        vec![
            PartitionConfig {
                name: "BRANCH/TELLER".into(),
                pages: self.bt_pages(),
                locking: true,
                storage: StorageAllocation::disk(5 * hundreds),
            },
            PartitionConfig {
                name: "ACCOUNT".into(),
                pages: self.account_pages(),
                locking: true,
                storage: StorageAllocation::disk(6 * hundreds),
            },
            PartitionConfig {
                name: "HISTORY".into(),
                // Nominal size; HISTORY grows by appends, the simulator
                // only tracks per-node append cursors.
                pages: 1 << 40,
                locking: false,
                storage: StorageAllocation::disk(3 * hundreds),
            },
        ]
    }

    /// The branch-ranged GLA map used by PCL (§3.2: each node holds the
    /// GLA for an equal number of branches and their associated
    /// TELLER, ACCOUNT and HISTORY records).
    pub fn gla_map(&self) -> GlaMap {
        GlaMap::new(
            self.nodes,
            vec![
                // BRANCH/TELLER: one page per branch.
                PartitionGla::Ranged {
                    units: self.branches,
                    unit_pages: 1,
                },
                // ACCOUNT: contiguous pages per branch.
                PartitionGla::Ranged {
                    units: self.branches,
                    unit_pages: self.account_pages_per_branch(),
                },
                // HISTORY is not locked; hash is irrelevant but total.
                PartitionGla::Hashed,
            ],
        )
    }
}

/// The debit-credit workload source: draws transactions, routes them
/// (randomly or by branch affinity), and maintains per-node HISTORY
/// append cursors.
#[derive(Debug, Clone)]
pub struct DebitCreditWorkload {
    dc: DebitCredit,
    routing: RoutingStrategy,
    /// §3.1: clustering stores TELLER records in their BRANCH record's
    /// page, reducing the transaction to three page accesses and three
    /// locks. All of the paper's experiments cluster; the unclustered
    /// variant (four pages, four locks) is supported for completeness.
    clustered: bool,
    partitions: Vec<PartitionConfig>,
    /// Per-node count of appended history records (blocking factor 20
    /// means a new page every 20 appends — the paper's 95% "hit ratio").
    history_records: Vec<u64>,
    /// Round-robin cursor for balanced random routing.
    rr_next: u16,
    /// Optional Zipf skew over the accounts *within* a branch (the
    /// TPC-style uniform account selection is the paper's default; the
    /// skewed variant is a reproduction extension that creates ACCOUNT
    /// rereference locality and lock contention).
    account_zipf: Option<Zipf>,
}

impl DebitCreditWorkload {
    /// Creates the workload for the given geometry and routing strategy.
    pub fn new(dc: DebitCredit, tps_per_node: f64, routing: RoutingStrategy) -> Self {
        let partitions = dc.partitions(tps_per_node);
        let nodes = dc.nodes() as usize;
        DebitCreditWorkload {
            dc,
            routing,
            clustered: true,
            partitions,
            history_records: vec![0; nodes],
            rr_next: 0,
            account_zipf: None,
        }
    }

    /// Switches to the unclustered layout (§3.1): BRANCH and TELLER as
    /// separate partitions, four page accesses and four page locks per
    /// transaction.
    pub fn unclustered(mut self) -> Self {
        self.clustered = false;
        // BRANCH alone in slot 0 (one record per page, bf 1).
        self.partitions[BT.index()].name = "BRANCH".into();
        // TELLER gets its own partition: 10 tellers per branch at
        // blocking factor 10 = one page per branch.
        let disks = match self.partitions[BT.index()].storage {
            StorageAllocation::Disk { disks } => disks,
            _ => 2,
        };
        self.partitions.push(PartitionConfig {
            name: "TELLER".into(),
            pages: self.dc.branches(),
            locking: true,
            storage: StorageAllocation::disk(disks),
        });
        self
    }

    /// The teller page of `branch` (unclustered layout).
    pub fn teller_page(&self, branch: u64) -> PageId {
        PageId::new(TELLER, branch * TELLERS_PER_BRANCH / TELLER_BLOCKING)
    }

    /// Skews account selection within each branch by Zipf(`alpha`)
    /// instead of the TPC-mandated uniform choice (extension).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn with_account_skew(mut self, alpha: f64) -> Self {
        self.account_zipf = Some(Zipf::new(self.dc.accounts_per_branch(), alpha));
        self
    }

    /// The underlying geometry.
    pub fn geometry(&self) -> &DebitCredit {
        &self.dc
    }

    fn route(&mut self, rng: &mut Rng, branch: u64) -> NodeId {
        match self.routing {
            RoutingStrategy::Affinity => self.dc.branch_node(branch),
            RoutingStrategy::Random => {
                // "Balanced" random: round-robin over nodes keeps the
                // per-node load equal (§3.1) while the branch choice
                // stays random.
                let _ = rng;
                let n = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.dc.nodes();
                NodeId::new(n)
            }
        }
    }

    /// Per-node history page for the next append; each node appends to
    /// its own history extent (nodes never share a history tail — the
    /// paper reports no coherency effects on HISTORY).
    fn history_page(&mut self, node: NodeId) -> PageId {
        let recs = &mut self.history_records[node.index()];
        let page_in_stream = *recs / HISTORY_BLOCKING;
        *recs += 1;
        // Interleave node streams in the page number space.
        PageId::new(
            HISTORY,
            page_in_stream * self.dc.nodes() as u64 + node.index() as u64,
        )
    }
}

impl Workload for DebitCreditWorkload {
    fn next(&mut self, rng: &mut Rng) -> (NodeId, TxnSpec) {
        self.next_with(rng, None)
    }

    fn next_with(&mut self, rng: &mut Rng, spare: Option<TxnSpec>) -> (NodeId, TxnSpec) {
        let dc = self.dc.clone();
        let branch = rng.below(dc.branches());
        let node = self.route(rng, branch);

        // 85% of ACCOUNT accesses hit the transaction's own branch.
        let within = |rng: &mut Rng, zipf: &Option<Zipf>| -> u64 {
            match zipf {
                Some(z) => z.sample(rng) - 1,
                None => rng.below(dc.accounts_per_branch()),
            }
        };
        let account = if rng.chance(LOCAL_BRANCH_FRACTION) || dc.branches() == 1 {
            branch * dc.accounts_per_branch() + within(rng, &self.account_zipf)
        } else {
            // A different branch, uniform over the others.
            let other = {
                let x = rng.below(dc.branches() - 1);
                if x >= branch {
                    x + 1
                } else {
                    x
                }
            };
            other * dc.accounts_per_branch() + within(rng, &self.account_zipf)
        };

        let history = self.history_page(node);
        // Access order (§3.1): ACCOUNT first, the sequential HISTORY
        // insert, and the small TELLER and BRANCH records last to keep
        // their locks held as briefly as possible. All four record
        // types are updated; clustering folds BRANCH+TELLER into one
        // page write (two record accesses). The reference buffer of a
        // retired spec is reused when the caller supplies one.
        let mut refs = spare.map(TxnSpec::into_refs).unwrap_or_default();
        refs.push(PageRef::write(dc.account_page(account)));
        refs.push(PageRef::append(history));
        if self.clustered {
            refs.push(PageRef::write(dc.bt_page(branch)).with_records(2));
        } else {
            refs.push(PageRef::write(self.teller_page(branch)));
            refs.push(PageRef::write(dc.bt_page(branch)));
        }
        (node, TxnSpec::new(TxnTypeId::new(0), branch, refs))
    }

    fn mean_accesses(&self) -> f64 {
        // With BRANCH/TELLER clustering each transaction performs four
        // record accesses on three pages; CPU cost is per record (§3.2).
        4.0
    }

    fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }

    fn gla_map(&self) -> GlaMap {
        let mut map = self.dc.gla_map();
        if !self.clustered {
            map = GlaMap::new(
                self.dc.nodes(),
                vec![
                    PartitionGla::Ranged {
                        units: self.dc.branches(),
                        unit_pages: 1,
                    },
                    PartitionGla::Ranged {
                        units: self.dc.branches(),
                        unit_pages: self.dc.account_pages_per_branch(),
                    },
                    PartitionGla::Hashed,
                    // TELLER: one page per branch, branch-aligned
                    PartitionGla::Ranged {
                        units: self.dc.branches(),
                        unit_pages: 1,
                    },
                ],
            );
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_scales_with_rate() {
        let dc = DebitCredit::new(10, 100.0);
        assert_eq!(dc.branches(), 1_000);
        assert_eq!(dc.accounts(), 100_000_000); // paper: 100M accounts at 10 nodes
        assert_eq!(dc.account_pages(), 10_000_000);
        assert_eq!(dc.accounts_per_branch(), 100_000);
        assert_eq!(dc.bt_pages(), 1_000);
    }

    #[test]
    fn explicit_account_geometry() {
        let dc = DebitCredit::with_accounts(200, 1_000_000);
        assert_eq!(dc.branches(), 200);
        assert_eq!(dc.accounts(), 1_000_000);
        assert_eq!(dc.accounts_per_branch(), 5_000);
        assert_eq!(dc.account_pages(), 100_000);
        // Uneven division rounds down to whole pages per branch.
        let dc = DebitCredit::with_accounts(64, 100_000);
        assert_eq!(dc.accounts_per_branch(), 1_560);
        assert_eq!(dc.accounts(), 99_840);
        // Geometry identities the GLA map relies on still hold.
        assert_eq!(
            dc.account_pages_per_branch() * ACCOUNT_BLOCKING,
            dc.accounts_per_branch()
        );
    }

    #[test]
    fn central_case_geometry() {
        let dc = DebitCredit::new(1, 100.0);
        assert_eq!(dc.branches(), 100);
        assert_eq!(dc.accounts(), 10_000_000);
        assert_eq!(dc.account_pages_per_branch(), 10_000);
    }

    #[test]
    fn branch_node_is_balanced_and_contiguous() {
        let dc = DebitCredit::new(4, 100.0);
        let mut counts = [0u32; 4];
        let mut last = NodeId::new(0);
        for b in 0..dc.branches() {
            let n = dc.branch_node(b);
            counts[n.index()] += 1;
            assert!(n >= last, "assignment must be monotone");
            last = n;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn account_page_layout_branch_contiguous() {
        let dc = DebitCredit::new(2, 100.0);
        let apb = dc.accounts_per_branch();
        // first account of branch 3 lands on page 3 * pages_per_branch
        let acct = 3 * apb;
        assert_eq!(
            dc.account_page(acct).number(),
            3 * dc.account_pages_per_branch()
        );
        assert_eq!(dc.account_branch(acct), 3);
        assert_eq!(dc.account_branch(acct - 1), 2);
    }

    #[test]
    fn txn_shape_three_pages_ordered() {
        let dc = DebitCredit::new(2, 100.0);
        let mut w = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity);
        let mut rng = Rng::seed_from_u64(1);
        let (_, spec) = w.next(&mut rng);
        let refs = spec.refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].page.partition(), ACCOUNT);
        assert_eq!(refs[1].page.partition(), HISTORY);
        assert_eq!(refs[2].page.partition(), BT);
        assert!(refs.iter().all(|r| r.mode.is_write()));
        assert!(refs[1].append && !refs[0].append && !refs[2].append);
        assert!(spec.is_update());
    }

    #[test]
    fn affinity_routes_by_branch() {
        let dc = DebitCredit::new(4, 100.0);
        let mut w = DebitCreditWorkload::new(dc.clone(), 100.0, RoutingStrategy::Affinity);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..500 {
            let (node, spec) = w.next(&mut rng);
            assert_eq!(node, dc.branch_node(spec.affinity_key()));
            // the B/T page is always the local branch's page
            assert_eq!(spec.refs()[2].page.number(), spec.affinity_key());
        }
    }

    #[test]
    fn random_routing_is_balanced() {
        let dc = DebitCredit::new(5, 100.0);
        let mut w = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Random);
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..1_000 {
            let (node, _) = w.next(&mut rng);
            counts[node.index()] += 1;
        }
        assert_eq!(counts, [200; 5]);
    }

    #[test]
    fn account_local_fraction_near_85_percent() {
        let dc = DebitCredit::new(2, 100.0);
        let mut w = DebitCreditWorkload::new(dc.clone(), 100.0, RoutingStrategy::Affinity);
        let mut rng = Rng::seed_from_u64(4);
        let mut local = 0u32;
        let n = 20_000;
        for _ in 0..n {
            let (_, spec) = w.next(&mut rng);
            let acct_page = spec.refs()[0].page.number();
            let acct_branch = acct_page / dc.account_pages_per_branch();
            if acct_branch == spec.affinity_key() {
                local += 1;
            }
        }
        let frac = local as f64 / n as f64;
        assert!((0.84..0.86).contains(&frac), "{frac}");
    }

    #[test]
    fn history_appends_advance_every_20_records() {
        let dc = DebitCredit::new(1, 100.0);
        let mut w = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity);
        let mut rng = Rng::seed_from_u64(5);
        let mut pages = Vec::new();
        for _ in 0..40 {
            let (_, spec) = w.next(&mut rng);
            pages.push(spec.refs()[1].page.number());
        }
        // first 20 appends share a page, next 20 the following page
        assert!(pages[..20].iter().all(|&p| p == pages[0]));
        assert!(pages[20..].iter().all(|&p| p == pages[20]));
        assert_ne!(pages[0], pages[20]);
    }

    #[test]
    fn history_streams_are_per_node() {
        let dc = DebitCredit::new(2, 100.0);
        let mut w = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Random);
        let mut rng = Rng::seed_from_u64(6);
        let mut seen: Vec<(usize, u64)> = Vec::new();
        for _ in 0..100 {
            let (node, spec) = w.next(&mut rng);
            seen.push((node.index(), spec.refs()[1].page.number()));
        }
        // no history page is shared between nodes
        for &(n1, p1) in &seen {
            for &(n2, p2) in &seen {
                if p1 == p2 {
                    assert_eq!(n1, n2, "page {p1} shared by nodes {n1} and {n2}");
                }
            }
        }
    }

    #[test]
    fn account_skew_creates_rereference_locality() {
        let dc = DebitCredit::new(1, 100.0);
        let mut uniform = DebitCreditWorkload::new(dc.clone(), 100.0, RoutingStrategy::Affinity);
        let mut skewed =
            DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity).with_account_skew(1.2);
        let mut rng_u = Rng::seed_from_u64(9);
        let mut rng_s = Rng::seed_from_u64(9);
        let distinct = |w: &mut DebitCreditWorkload, rng: &mut Rng| {
            let mut pages = std::collections::HashSet::new();
            for _ in 0..5_000 {
                let (_, spec) = w.next(rng);
                pages.insert(spec.refs()[0].page);
            }
            pages.len()
        };
        let u = distinct(&mut uniform, &mut rng_u);
        let s = distinct(&mut skewed, &mut rng_s);
        assert!(
            s * 3 < u * 2,
            "skewed accounts must concentrate: {s} vs {u} distinct pages"
        );
    }

    #[test]
    fn partitions_layout() {
        let dc = DebitCredit::new(2, 100.0);
        let parts = dc.partitions(100.0);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[BT.index()].name, "BRANCH/TELLER");
        assert!(parts[BT.index()].locking);
        assert!(!parts[HISTORY.index()].locking);
        assert_eq!(parts[ACCOUNT.index()].pages, 2_000_000);
        // disk arrays scale with the aggregate rate
        match parts[ACCOUNT.index()].storage {
            StorageAllocation::Disk { disks } => assert_eq!(disks, 12),
            _ => panic!("expected disks"),
        }
    }

    #[test]
    fn gla_follows_branch_ownership() {
        let dc = DebitCredit::new(4, 100.0);
        let gla = dc.gla_map();
        for b in [0u64, 57, 200, 399] {
            let node = dc.branch_node(b);
            assert_eq!(gla.gla_of(dc.bt_page(b)), node, "B/T page of branch {b}");
            let first_acct = b * dc.accounts_per_branch();
            assert_eq!(
                gla.gla_of(dc.account_page(first_acct)),
                node,
                "account page of branch {b}"
            );
            let last_acct = (b + 1) * dc.accounts_per_branch() - 1;
            assert_eq!(gla.gla_of(dc.account_page(last_acct)), node);
        }
    }
}

#[cfg(test)]
mod unclustered_tests {
    use super::*;

    #[test]
    fn unclustered_txns_access_four_pages() {
        let dc = DebitCredit::new(2, 100.0);
        let mut w = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity).unclustered();
        let mut rng = Rng::seed_from_u64(3);
        let (_, spec) = w.next(&mut rng);
        let refs = spec.refs();
        assert_eq!(refs.len(), 4);
        assert_eq!(refs[0].page.partition(), ACCOUNT);
        assert_eq!(refs[1].page.partition(), HISTORY);
        assert_eq!(refs[2].page.partition(), TELLER);
        assert_eq!(refs[3].page.partition(), BT);
        // every reference is a single record access now
        assert!(refs.iter().all(|r| r.records == 1));
        assert_eq!(Workload::partitions(&w).len(), 4);
        assert_eq!(Workload::partitions(&w)[BT.index()].name, "BRANCH");
        assert_eq!(Workload::partitions(&w)[TELLER.index()].name, "TELLER");
    }

    #[test]
    fn unclustered_gla_keeps_branch_alignment() {
        let dc = DebitCredit::new(4, 100.0);
        let w =
            DebitCreditWorkload::new(dc.clone(), 100.0, RoutingStrategy::Affinity).unclustered();
        let gla = Workload::gla_map(&w);
        for b in [0u64, 123, 399] {
            let node = dc.branch_node(b);
            assert_eq!(gla.gla_of(dc.bt_page(b)), node);
            assert_eq!(gla.gla_of(w.teller_page(b)), node);
        }
    }

    #[test]
    fn teller_pages_are_branch_exclusive() {
        // With 10 tellers per branch and blocking factor 10, one page
        // per branch: no false sharing between branches.
        let dc = DebitCredit::new(2, 100.0);
        let w = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity).unclustered();
        let mut seen = std::collections::HashMap::new();
        for b in 0..200u64 {
            let p = w.teller_page(b);
            assert!(seen.insert(p, b).is_none(), "branches share teller page");
        }
    }
}
