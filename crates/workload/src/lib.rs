//! # dbshare-workload — workload generation and allocation
//!
//! Implements §3.1 of the paper: the SOURCE component. Two workload
//! families are provided:
//!
//! * [`debit_credit`] — the synthetically generated debit-credit
//!   workload (the TPC-A/B precursor) with its scaled database,
//!   record clustering, and 85/15 branch locality, and
//! * [`trace`] — trace-driven workloads, including a synthetic trace
//!   generator that substitutes for the paper's proprietary database
//!   trace by matching every summary statistic §4.6 reports.
//!
//! Workload *allocation* (§3.1) is supported through balanced random
//! routing and affinity-based routing; [`routing`] contains the
//! iterative heuristics that compute routing tables and GLA chunk
//! assignments for trace workloads (\[Ra92b\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod debit_credit;
pub mod routing;
pub mod trace;

pub use debit_credit::{DebitCredit, DebitCreditWorkload};
pub use trace::{Trace, TraceGenConfig, TraceStats, TraceWorkload};

use dbshare_model::gla::GlaMap;
use dbshare_model::{NodeId, PartitionConfig, TxnSpec};
use desim::Rng;

/// Wraps a workload, overriding only its GLA map — e.g. to study a
/// central lock manager (`GlaMap::central`) or a deliberately
/// misaligned lock-authority allocation.
///
/// ```rust
/// use dbshare_workload::{DebitCredit, DebitCreditWorkload, WithGlaMap, Workload};
/// use dbshare_model::{gla::GlaMap, RoutingStrategy};
/// let dc = DebitCredit::new(2, 100.0);
/// let wl = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Random);
/// let central = WithGlaMap::new(wl, GlaMap::central(2, 3));
/// assert_eq!(central.gla_map().nodes(), 2);
/// ```
#[derive(Debug)]
pub struct WithGlaMap<W> {
    inner: W,
    map: GlaMap,
}

impl<W: Workload> WithGlaMap<W> {
    /// Wraps `inner`, replacing its GLA map with `map`.
    pub fn new(inner: W, map: GlaMap) -> Self {
        WithGlaMap { inner, map }
    }
}

impl<W: Workload> Workload for WithGlaMap<W> {
    fn next(&mut self, rng: &mut Rng) -> (NodeId, TxnSpec) {
        self.inner.next(rng)
    }
    fn next_with(&mut self, rng: &mut Rng, spare: Option<TxnSpec>) -> (NodeId, TxnSpec) {
        self.inner.next_with(rng, spare)
    }
    fn mean_accesses(&self) -> f64 {
        self.inner.mean_accesses()
    }
    fn partitions(&self) -> &[PartitionConfig] {
        self.inner.partitions()
    }
    fn gla_map(&self) -> GlaMap {
        self.map.clone()
    }
}

/// A source of routed transactions: the simulator pulls `(node, spec)`
/// pairs and releases them according to the arrival process.
///
/// Implementations: [`DebitCreditWorkload`], [`TraceWorkload`].
pub trait Workload {
    /// Draws the next transaction and the node it is routed to.
    fn next(&mut self, rng: &mut Rng) -> (NodeId, TxnSpec);

    /// Like [`Workload::next`], but may reuse the reference buffer of a
    /// retired spec instead of allocating a fresh one. Implementations
    /// must draw from `rng` exactly as [`Workload::next`] does, so runs
    /// are bit-identical whether or not spares are supplied. The
    /// default ignores the spare.
    fn next_with(&mut self, rng: &mut Rng, spare: Option<TxnSpec>) -> (NodeId, TxnSpec) {
        let _ = spare;
        self.next(rng)
    }

    /// Mean *record* accesses per transaction (CPU is charged per
    /// record access, §3.2).
    fn mean_accesses(&self) -> f64;

    /// The database layout this workload runs against.
    fn partitions(&self) -> &[PartitionConfig];

    /// The GLA assignment used by primary copy locking.
    fn gla_map(&self) -> GlaMap;
}
