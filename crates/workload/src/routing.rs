//! Affinity-based workload allocation for trace workloads.
//!
//! §3.1: *"workload allocation can be defined by a so-called routing
//! table [...] To determine the routing tables, we applied iterative
//! heuristics that use the reference distribution of the workload and
//! the number of nodes as input parameters"* (\[Ra92b\]). This module
//! implements those heuristics: a greedy assignment of transaction
//! types to nodes followed by iterative improvement, balancing load
//! while maximizing the co-location of types that reference the same
//! files; and the corresponding GLA assignment at page-chunk
//! granularity that maximizes local lock processing.

use crate::trace::Trace;
use dbshare_model::gla::{GlaMap, PartitionGla};
use dbshare_model::{NodeId, TxnTypeId};
use std::collections::HashMap;

/// A routing table: the node each transaction type is routed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    nodes: Vec<NodeId>,
}

impl RoutingTable {
    /// Builds a table from an explicit assignment (indexed by type).
    pub fn new(nodes: Vec<NodeId>) -> Self {
        RoutingTable { nodes }
    }

    /// The node for `txn_type`.
    ///
    /// # Panics
    ///
    /// Panics if the type is not covered by the table.
    pub fn node_for(&self, txn_type: TxnTypeId) -> NodeId {
        self.nodes[txn_type.index()]
    }

    /// Number of transaction types covered.
    pub fn types(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over `(type, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TxnTypeId, NodeId)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(t, &n)| (TxnTypeId::new(t as u16), n))
    }
}

/// Reference profile extracted from a trace: per-type load and
/// per-type-per-file reference counts.
#[derive(Debug, Clone)]
struct Profile {
    /// load[t]: total references of type t (its share of the work).
    load: Vec<f64>,
    /// tf[t]: file -> reference count for type t.
    tf: Vec<HashMap<usize, f64>>,
    files: usize,
}

fn profile(trace: &Trace) -> Profile {
    let mut types = 0usize;
    for t in trace.txns() {
        types = types.max(t.txn_type.index() + 1);
    }
    let files = trace.partitions().len();
    let mut load = vec![0.0; types];
    let mut tf: Vec<HashMap<usize, f64>> = vec![HashMap::new(); types];
    for t in trace.txns() {
        let ty = t.txn_type.index();
        load[ty] += t.refs.len() as f64;
        for r in &t.refs {
            *tf[ty].entry(r.page.partition().index()).or_insert(0.0) += 1.0;
        }
    }
    Profile { load, tf, files }
}

/// Computes an affinity routing table for `nodes` nodes with the
/// greedy + iterative-improvement heuristic.
///
/// The objective maximizes Σ_f max_n R(f, n) — the references that land
/// on the node holding the majority of their file's traffic — subject
/// to per-node load staying within 20% of the average.
///
/// ```rust
/// use dbshare_workload::{trace::{Trace, TraceGenConfig}, routing::affinity_table};
/// let trace = Trace::synthesize(&TraceGenConfig::default(), 1);
/// let table = affinity_table(&trace, 4);
/// assert_eq!(table.types(), 12);
/// ```
pub fn affinity_table(trace: &Trace, nodes: u16) -> RoutingTable {
    let p = profile(trace);
    let types = p.load.len();
    if nodes <= 1 {
        return RoutingTable::new(vec![NodeId::new(0); types]);
    }
    let n = nodes as usize;
    let total: f64 = p.load.iter().sum();
    let cap = total / n as f64 * 1.2;

    // Greedy: heaviest types first; prefer the node with the largest
    // file-overlap with what is already placed there.
    let mut order: Vec<usize> = (0..types).collect();
    order.sort_by(|&a, &b| p.load[b].partial_cmp(&p.load[a]).expect("finite loads"));
    let mut assign = vec![0usize; types];
    let mut node_load = vec![0.0f64; n];
    let mut node_files: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
    for &t in &order {
        let mut best = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        for ni in 0..n {
            if node_load[ni] + p.load[t] > cap && node_load[ni] > 0.0 {
                continue;
            }
            let overlap: f64 = p.tf[t]
                .iter()
                .map(|(f, w)| w * node_files[ni].get(f).copied().unwrap_or(0.0).sqrt())
                .sum();
            // Light load preference breaks ties toward balance.
            let score = overlap - node_load[ni] * 1e-3;
            if score > best_score {
                best_score = score;
                best = ni;
            }
        }
        let ni = if best == usize::MAX {
            // everything over cap: take the least loaded
            (0..n)
                .min_by(|&a, &b| node_load[a].partial_cmp(&node_load[b]).expect("finite"))
                .expect("n > 0")
        } else {
            best
        };
        assign[t] = ni;
        node_load[ni] += p.load[t];
        for (f, w) in &p.tf[t] {
            *node_files[ni].entry(*f).or_insert(0.0) += w;
        }
    }

    // Iterative improvement: move a type if it raises the majority
    // objective without violating the load cap.
    let objective = |assign: &[usize]| -> f64 {
        let mut rf = vec![vec![0.0f64; n]; p.files];
        for (t, &ni) in assign.iter().enumerate() {
            for (f, w) in &p.tf[t] {
                rf[*f][ni] += w;
            }
        }
        rf.iter()
            .map(|per_node| per_node.iter().cloned().fold(0.0, f64::max))
            .sum()
    };
    let mut best_obj = objective(&assign);
    for _pass in 0..8 {
        let mut improved = false;
        for t in 0..types {
            let from = assign[t];
            for to in 0..n {
                if to == from || node_load[to] + p.load[t] > cap {
                    continue;
                }
                assign[t] = to;
                let obj = objective(&assign);
                if obj > best_obj + 1e-9 {
                    best_obj = obj;
                    node_load[from] -= p.load[t];
                    node_load[to] += p.load[t];
                    improved = true;
                    break;
                }
                assign[t] = from;
            }
        }
        if !improved {
            break;
        }
    }

    RoutingTable::new(
        assign
            .into_iter()
            .map(|ni| NodeId::new(ni as u16))
            .collect(),
    )
}

/// Computes the PCL GLA assignment for a trace workload at page-chunk
/// granularity: each file is split into contiguous chunks of
/// `chunk_pages`, and each chunk's lock authority goes to the node that
/// references it most under `table` (with load balancing so no node
/// holds more than ~1.4× the average lock traffic).
///
/// The chunk granularity is what makes locality imperfect and *decrease*
/// with more nodes, as the paper observes for its real-life workload
/// (§4.6: local lock shares fall from 63% at 2 nodes to 35% at 8).
pub fn gla_chunks(trace: &Trace, table: &RoutingTable, nodes: u16, chunk_pages: u64) -> GlaMap {
    assert!(chunk_pages > 0, "chunk size must be positive");
    let files = trace.partitions().len();
    if nodes <= 1 {
        return GlaMap::new(1, vec![PartitionGla::Hashed; files]);
    }
    let n = nodes as usize;

    // refs[(file, chunk)][node]
    let mut chunk_refs: HashMap<(usize, u64), Vec<f64>> = HashMap::new();
    for t in trace.txns() {
        let node = table.node_for(t.txn_type).index();
        for r in &t.refs {
            let key = (r.page.partition().index(), r.page.number() / chunk_pages);
            chunk_refs.entry(key).or_insert_with(|| vec![0.0; n])[node] += 1.0;
        }
    }

    // Assign chunks, heaviest first, to their majority node unless that
    // node is already overloaded with lock traffic.
    let mut chunks: Vec<((usize, u64), Vec<f64>)> = chunk_refs.into_iter().collect();
    chunks.sort_by(|a, b| {
        let sa: f64 = a.1.iter().sum();
        let sb: f64 = b.1.iter().sum();
        sb.partial_cmp(&sa)
            .expect("finite")
            .then_with(|| a.0.cmp(&b.0))
    });
    let total: f64 = chunks.iter().map(|(_, v)| v.iter().sum::<f64>()).sum();
    let cap = total / n as f64 * 1.4;
    let mut node_traffic = vec![0.0f64; n];
    let mut per_file_maps: Vec<HashMap<u64, NodeId>> = vec![HashMap::new(); files];
    for ((file, chunk), per_node) in chunks {
        let weight: f64 = per_node.iter().sum();
        let mut prefs: Vec<usize> = (0..n).collect();
        prefs.sort_by(|&a, &b| per_node[b].partial_cmp(&per_node[a]).expect("finite"));
        let target = prefs
            .iter()
            .copied()
            .find(|&ni| node_traffic[ni] + weight <= cap)
            .unwrap_or_else(|| {
                (0..n)
                    .min_by(|&a, &b| {
                        node_traffic[a]
                            .partial_cmp(&node_traffic[b])
                            .expect("finite")
                    })
                    .expect("n > 0")
            });
        node_traffic[target] += weight;
        let first = chunk * chunk_pages;
        for page in first..first + chunk_pages {
            per_file_maps[file].insert(page, NodeId::new(target as u16));
        }
    }

    GlaMap::new(
        nodes,
        per_file_maps
            .into_iter()
            .map(PartitionGla::PerPage)
            .collect(),
    )
}

/// Fraction of references that land on the node holding their page's
/// GLA, under a given routing table — the *upper bound* on local lock
/// processing for PCL (protocol effects like read authorizations can
/// only add to it).
pub fn local_lock_share(trace: &Trace, table: &RoutingTable, gla: &GlaMap) -> f64 {
    let mut local = 0u64;
    let mut total = 0u64;
    for t in trace.txns() {
        let node = table.node_for(t.txn_type);
        for r in &t.refs {
            total += 1;
            if gla.gla_of(r.page) == node {
                local += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        local as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Trace, TraceGenConfig};

    fn trace() -> Trace {
        Trace::synthesize(&TraceGenConfig::default(), 7)
    }

    #[test]
    fn single_node_all_zero() {
        let t = trace();
        let table = affinity_table(&t, 1);
        for (_, n) in table.iter() {
            assert_eq!(n, NodeId::new(0));
        }
    }

    #[test]
    fn load_is_balanced() {
        let t = trace();
        for nodes in [2u16, 4, 8] {
            let table = affinity_table(&t, nodes);
            let mut load = vec![0u64; nodes as usize];
            for txn in t.txns() {
                load[table.node_for(txn.txn_type).index()] += txn.refs.len() as u64;
            }
            let total: u64 = load.iter().sum();
            let avg = total as f64 / nodes as f64;
            for (i, &l) in load.iter().enumerate() {
                assert!(
                    (l as f64) < avg * 1.6,
                    "{nodes} nodes: node {i} overloaded: {l} vs avg {avg}"
                );
                assert!(
                    (l as f64) > avg * 0.3,
                    "{nodes} nodes: node {i} starved: {l} vs avg {avg}"
                );
            }
        }
    }

    #[test]
    fn affinity_beats_random_gla_locality() {
        let t = trace();
        for nodes in [2u16, 4, 8] {
            let table = affinity_table(&t, nodes);
            let gla = gla_chunks(&t, &table, nodes, 512);
            let affinity_share = local_lock_share(&t, &table, &gla);
            // Random routing spreads each type round-robin; its local
            // share is ~1/N by symmetry.
            let random = 1.0 / nodes as f64;
            assert!(
                affinity_share > random + 0.1,
                "{nodes} nodes: affinity {affinity_share} vs random {random}"
            );
        }
    }

    #[test]
    fn locality_decreases_with_nodes() {
        // §4.6: raw local share falls from ~63% (2 nodes) to ~35% (8).
        let t = trace();
        let share = |nodes: u16| {
            let table = affinity_table(&t, nodes);
            let gla = gla_chunks(&t, &table, nodes, 512);
            local_lock_share(&t, &table, &gla)
        };
        let s2 = share(2);
        let s8 = share(8);
        assert!(s2 > s8, "s2={s2} s8={s8}");
        assert!((0.45..0.98).contains(&s2), "s2={s2}");
        assert!((0.25..0.75).contains(&s8), "s8={s8}");
    }

    #[test]
    fn gla_chunks_balance_lock_traffic() {
        let t = trace();
        let nodes = 4u16;
        let table = affinity_table(&t, nodes);
        let gla = gla_chunks(&t, &table, nodes, 512);
        let mut traffic = vec![0u64; nodes as usize];
        for txn in t.txns() {
            for r in &txn.refs {
                traffic[gla.gla_of(r.page).index()] += 1;
            }
        }
        let total: u64 = traffic.iter().sum();
        let avg = total as f64 / nodes as f64;
        for (i, &tr) in traffic.iter().enumerate() {
            assert!(
                (tr as f64) < avg * 1.6 && (tr as f64) > avg * 0.4,
                "node {i}: {tr} vs avg {avg}"
            );
        }
    }

    #[test]
    fn routing_table_iter_and_accessors() {
        let table = RoutingTable::new(vec![NodeId::new(1), NodeId::new(0)]);
        assert_eq!(table.types(), 2);
        assert_eq!(table.node_for(TxnTypeId::new(0)), NodeId::new(1));
        let pairs: Vec<_> = table.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1], (TxnTypeId::new(1), NodeId::new(0)));
    }
}
