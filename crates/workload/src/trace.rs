//! Trace-driven workloads and the synthetic trace generator.
//!
//! The paper's §4.6 uses a proprietary database trace. Per the
//! substitution policy in `DESIGN.md`, [`Trace::synthesize`] generates
//! a workload matched to every summary statistic the paper reports:
//!
//! * more than 17,500 transactions of twelve types,
//! * about 1 million page references (the largest transaction — an
//!   ad-hoc query — performs more than 11,000),
//! * 13 files, ~66,000 distinct pages referenced out of a ~4 GB
//!   database (1M 4-KB pages),
//! * about 20% update transactions but only ~1.6% write references,
//! * highly non-uniform (Zipf) access distributions with *overlapping*
//!   hot sets across transaction types, which limits partitionability —
//!   the property that makes affinity routing hard for real workloads.

use crate::routing::{self, RoutingTable};
use crate::Workload;
use dbshare_model::gla::GlaMap;
use dbshare_model::{
    NodeId, PageId, PageRef, PartitionConfig, PartitionId, RoutingStrategy, StorageAllocation,
    TxnSpec, TxnTypeId,
};
use desim::dist::Zipf;
use desim::Rng;
use std::collections::HashSet;

/// One recorded transaction of a trace: its type and ordered page
/// references with access modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTxn {
    /// Transaction type recorded in the trace.
    pub txn_type: TxnTypeId,
    /// Ordered page references.
    pub refs: Vec<PageRef>,
}

/// Per-type profile used by the synthetic generator.
#[derive(Debug, Clone)]
struct TypeProfile {
    /// Number of transactions of this type in the trace.
    count: u32,
    /// Mean references per transaction (exponentially distributed,
    /// which yields the "significant variations in transaction size").
    mean_refs: f64,
    /// Probability that a reference is a write.
    write_frac: f64,
    /// `(file, weight)` pairs: which files the type touches.
    files: Vec<(usize, f64)>,
    /// Fixed-size sequential scan instead of skewed sampling (the
    /// ad-hoc query).
    sequential_scan: Option<u32>,
}

/// Parameters of the synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenConfig {
    /// Zipf skew of page selection inside each file's hot window.
    pub zipf_alpha: f64,
    /// Rotation step (pages) applied per transaction type inside a
    /// shared window; non-zero values give each type its own hot head
    /// while keeping overlap with other types (limited
    /// partitionability).
    pub type_rotation: u64,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            zipf_alpha: 1.0,
            type_rotation: 97,
        }
    }
}

/// File geometry of the synthetic database: `(total pages, hot-window pages)`.
/// Sizes sum to 1,048,576 pages ≈ 4 GB of 4-KB pages; windows sum to
/// ~70k pages so that ~66k distinct pages are referenced.
const FILES: [(u64, u64); 13] = [
    (30_000, 6_000),   // f0
    (20_000, 5_000),   // f1
    (25_000, 4_000),   // f2
    (30_000, 5_000),   // f3
    (50_000, 6_000),   // f4
    (15_000, 3_000),   // f5
    (10_000, 2_000),   // f6
    (60_000, 8_000),   // f7
    (80_000, 7_000),   // f8
    (40_000, 4_000),   // f9
    (100_000, 6_000),  // f10
    (448_576, 12_000), // f11 (the big file the ad-hoc query scans)
    (140_000, 2_000),  // f12
];

fn type_profiles() -> Vec<TypeProfile> {
    // Tuned so that totals match §4.6: see the module docs and tests.
    // The update files (f4, f5, f6) are referenced only by the *short*
    // updater types t2/t3: long read-only transactions sharing files
    // with updaters would create blocking convoys that the paper's
    // real-life trace demonstrably did not have ("lock conflicts had no
    // significant impact on performance").
    vec![
        TypeProfile {
            count: 4_000,
            mean_refs: 12.0,
            write_frac: 0.0,
            files: vec![(0, 0.7), (1, 0.3)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 3_500,
            mean_refs: 18.0,
            write_frac: 0.0,
            files: vec![(2, 0.6), (3, 0.4)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 2_000,
            mean_refs: 40.0,
            write_frac: 0.10,
            files: vec![(4, 0.6), (5, 0.4)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 1_500,
            mean_refs: 25.0,
            write_frac: 0.14,
            files: vec![(5, 0.5), (6, 0.5)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 1_800,
            mean_refs: 60.0,
            write_frac: 0.0,
            files: vec![(1, 0.4), (7, 0.6)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 1_200,
            mean_refs: 120.0,
            write_frac: 0.0,
            files: vec![(7, 0.5), (8, 0.5)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 1_000,
            mean_refs: 55.0,
            write_frac: 0.0,
            files: vec![(9, 0.5), (7, 0.5)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 1_400,
            mean_refs: 90.0,
            write_frac: 0.0,
            files: vec![(3, 0.5), (10, 0.5)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 500,
            mean_refs: 250.0,
            write_frac: 0.0,
            files: vec![(8, 0.6), (11, 0.4)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 400,
            mean_refs: 300.0,
            write_frac: 0.0,
            files: vec![(10, 0.6), (11, 0.4)],
            sequential_scan: None,
        },
        TypeProfile {
            count: 200,
            mean_refs: 180.0,
            write_frac: 0.0,
            files: vec![(12, 0.7), (0, 0.3)],
            sequential_scan: None,
        },
        // The ad-hoc query: three instances, each scanning >11,000
        // pages of the big file sequentially.
        TypeProfile {
            count: 3,
            mean_refs: 11_500.0,
            write_frac: 0.0,
            files: vec![(11, 1.0)],
            sequential_scan: Some(11_500),
        },
    ]
}

/// A complete trace: transactions in execution order plus the database
/// layout they reference.
///
/// ```rust
/// use dbshare_workload::trace::{Trace, TraceGenConfig};
/// let trace = Trace::synthesize(&TraceGenConfig::default(), 42);
/// let stats = trace.stats();
/// assert!(stats.txn_count > 17_500);
/// assert_eq!(stats.types, 12);
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    txns: Vec<TraceTxn>,
    partitions: Vec<PartitionConfig>,
}

impl Trace {
    /// Builds a trace from externally captured transactions (e.g., a
    /// real database trace a downstream user owns) and the database
    /// layout they reference.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, a transaction has no references,
    /// or a reference points outside the declared partitions.
    pub fn from_txns(txns: Vec<TraceTxn>, partitions: Vec<PartitionConfig>) -> Trace {
        assert!(!txns.is_empty(), "empty trace");
        for (i, t) in txns.iter().enumerate() {
            assert!(!t.refs.is_empty(), "transaction {i} has no references");
            for r in &t.refs {
                let part = partitions
                    .get(r.page.partition().index())
                    .unwrap_or_else(|| panic!("transaction {i} references unknown partition"));
                assert!(
                    r.page.number() < part.pages,
                    "transaction {i} references page {} beyond partition size {}",
                    r.page,
                    part.pages
                );
            }
        }
        Trace { txns, partitions }
    }

    /// Generates the synthetic trace (deterministic for a given seed).
    pub fn synthesize(cfg: &TraceGenConfig, seed: u64) -> Trace {
        let profiles = type_profiles();
        let mut rng = Rng::seed_from_u64(seed ^ 0x7ace_7ace);
        let zipfs: Vec<Zipf> = FILES
            .iter()
            .map(|&(_, window)| Zipf::new(window, cfg.zipf_alpha))
            .collect();

        // Build the multiset of transaction instances, then shuffle to
        // interleave types as a real trace would.
        let mut order: Vec<u16> = profiles
            .iter()
            .enumerate()
            .flat_map(|(t, p)| std::iter::repeat_n(t as u16, p.count as usize))
            .collect();
        rng.shuffle(&mut order);

        let mut txns = Vec::with_capacity(order.len());
        for t in order {
            let p = &profiles[t as usize];
            let refs = if let Some(scan) = p.sequential_scan {
                let file = p.files[0].0;
                let window = FILES[file].1;
                let start = rng.below(window.saturating_sub(scan as u64).max(1));
                (0..scan as u64)
                    .map(|i| {
                        PageRef::read(PageId::new(
                            PartitionId::new(file as u16),
                            (start + i) % window,
                        ))
                    })
                    .collect()
            } else {
                // Read-only transactions have the heavy (exponential)
                // size tail the paper describes; update transactions
                // are bounded, as in production OLTP — an unbounded
                // updater would hold read locks for seconds before its
                // terminal writes and convoy the whole update file.
                let cap = if p.write_frac > 0.0 {
                    (p.mean_refs * 3.0) as usize
                } else {
                    4_000
                };
                let n = (rng.exp(p.mean_refs).round() as usize).clamp(2, cap);
                let weights: Vec<f64> = p.files.iter().map(|&(_, w)| w).collect();
                let mut refs: Vec<PageRef> = (0..n)
                    .map(|_| {
                        let fi = p.files[rng.discrete(&weights)].0;
                        let window = FILES[fi].1;
                        let write = p.write_frac > 0.0 && rng.chance(p.write_frac);
                        // Reads follow the Zipf-skewed hot head (rotated
                        // per type: shared window, type-specific head).
                        // Writes spread uniformly over the *cold* region
                        // beyond every type's hot head: in real OLTP
                        // traces the hottest pages are read-mostly
                        // (index roots, lookup tables) and updates
                        // scatter — §4.6 reports that lock conflicts had
                        // no significant performance impact even at
                        // 400 TPS aggregate. Writes on read-hot pages
                        // would convoy dozens of concurrent readers
                        // behind each FIFO-queued writer.
                        let page = if write {
                            let lo = window * 3 / 4;
                            let hi = (window * 2).min(FILES[fi].0);
                            lo + rng.below(hi - lo)
                        } else {
                            let rank = zipfs[fi].sample(&mut rng) - 1;
                            (rank + t as u64 * cfg.type_rotation) % window
                        };
                        let id = PageId::new(PartitionId::new(fi as u16), page);
                        if write {
                            PageRef::write(id)
                        } else {
                            PageRef::read(id)
                        }
                    })
                    .collect();
                // An update-type transaction updates *something*: if the
                // write coin never landed, it appends one update access
                // to a cold-region page of its primary file (flipping a
                // hot *read* page to a write would put write locks on
                // the most-shared pages).
                if p.write_frac > 0.0 && !refs.iter().any(|r| r.mode.is_write()) {
                    let fi = p.files[0].0;
                    let window = FILES[fi].1;
                    let lo = window * 3 / 4;
                    let hi = (window * 2).min(FILES[fi].0);
                    let page = lo + rng.below(hi - lo);
                    refs.push(PageRef::write(PageId::new(
                        PartitionId::new(fi as u16),
                        page,
                    )));
                }
                // Pages a transaction writes are written from their first
                // access on (update-mode locking discipline): read-then-
                // write lock upgrades are a classic deadlock source that
                // well-behaved OLTP applications avoid.
                if p.write_frac > 0.0 {
                    let written: HashSet<PageId> = refs
                        .iter()
                        .filter(|r| r.mode.is_write())
                        .map(|r| r.page)
                        .collect();
                    for r in refs.iter_mut() {
                        if written.contains(&r.page) {
                            *r = PageRef::write(r.page);
                        }
                    }
                    // Updates are performed at the end of the
                    // transaction, in canonical page order — exactly the
                    // discipline the paper's debit-credit model uses to
                    // keep write-lock holding times short (§3.1) and
                    // avoid write-write deadlocks.
                    let (mut reads, mut writes): (Vec<_>, Vec<_>) =
                        refs.into_iter().partition(|r| !r.mode.is_write());
                    writes.sort_by_key(|r| r.page);
                    writes.dedup_by_key(|r| r.page);
                    reads.extend(writes);
                    refs = reads;
                }
                refs
            };
            txns.push(TraceTxn {
                txn_type: TxnTypeId::new(t),
                refs,
            });
        }

        // Disk allocation: arrays sized by each file's share of the
        // reference volume ("sufficient disks", §4.2), floor of 2.
        let mut per_file_refs = vec![0u64; FILES.len()];
        for txn in &txns {
            for r in &txn.refs {
                per_file_refs[r.page.partition().index()] += 1;
            }
        }
        let total_refs: u64 = per_file_refs.iter().sum();
        let partitions = FILES
            .iter()
            .enumerate()
            .map(|(i, &(pages, _))| PartitionConfig {
                name: format!("F{i}"),
                pages,
                locking: true,
                storage: StorageAllocation::disk(
                    (per_file_refs[i] as f64 / total_refs as f64 * 320.0)
                        .ceil()
                        .max(2.0) as u32,
                ),
            })
            .collect();

        Trace { txns, partitions }
    }

    /// The transactions in execution order.
    pub fn txns(&self) -> &[TraceTxn] {
        &self.txns
    }

    /// The database layout.
    pub fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }

    /// Summary statistics (compare against §4.6's description).
    pub fn stats(&self) -> TraceStats {
        let mut distinct: HashSet<PageId> = HashSet::new();
        let mut total_refs = 0u64;
        let mut write_refs = 0u64;
        let mut update_txns = 0u64;
        let mut max_txn = 0usize;
        let mut types: HashSet<TxnTypeId> = HashSet::new();
        for t in &self.txns {
            types.insert(t.txn_type);
            max_txn = max_txn.max(t.refs.len());
            let mut wrote = false;
            for r in &t.refs {
                distinct.insert(r.page);
                total_refs += 1;
                if r.mode.is_write() {
                    write_refs += 1;
                    wrote = true;
                }
            }
            if wrote {
                update_txns += 1;
            }
        }
        TraceStats {
            txn_count: self.txns.len() as u64,
            types: types.len() as u32,
            total_refs,
            write_refs,
            update_txns,
            distinct_pages: distinct.len() as u64,
            max_txn_refs: max_txn as u64,
            db_pages: self.partitions.iter().map(|p| p.pages).sum(),
        }
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of transactions.
    pub txn_count: u64,
    /// Number of distinct transaction types.
    pub types: u32,
    /// Total page references.
    pub total_refs: u64,
    /// Write references.
    pub write_refs: u64,
    /// Transactions performing at least one write.
    pub update_txns: u64,
    /// Distinct pages referenced.
    pub distinct_pages: u64,
    /// References of the largest transaction.
    pub max_txn_refs: u64,
    /// Total database size in pages.
    pub db_pages: u64,
}

/// A trace-driven workload source: replays the trace in its original
/// execution order (cycling when exhausted), routing transactions
/// randomly or by the affinity routing table (§3.1).
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    trace: Trace,
    routing: RoutingStrategy,
    table: RoutingTable,
    gla: GlaMap,
    next_idx: usize,
    rr_next: u16,
    nodes: u16,
    mean_accesses: f64,
    /// §3.1: "There may be a common arrival rate for all transactions
    /// in the trace preserving the original execution order of the
    /// workload. Alternatively, we can specify a different arrival rate
    /// per transaction type." `None` = order-preserving replay;
    /// `Some` = per-type weights with per-type replay cursors.
    type_weights: Option<Vec<f64>>,
    per_type: Vec<Vec<usize>>,
    per_type_next: Vec<usize>,
}

impl TraceWorkload {
    /// Builds the workload for `nodes` nodes. For affinity routing, the
    /// routing table and GLA chunk map are computed with the iterative
    /// heuristics of [`crate::routing`]; for random routing the same
    /// GLA map is kept (the database partitioning is a property of the
    /// system, not of the routing), exactly as in §4.6.
    pub fn new(trace: Trace, nodes: u16, routing: RoutingStrategy) -> Self {
        assert!(nodes > 0, "need at least one node");
        let table = routing::affinity_table(&trace, nodes);
        let gla = routing::gla_chunks(&trace, &table, nodes, 512);
        let stats = trace.stats();
        let mean_accesses = stats.total_refs as f64 / stats.txn_count as f64;
        let types = stats.types as usize;
        let mut per_type: Vec<Vec<usize>> = vec![Vec::new(); types];
        for (i, t) in trace.txns().iter().enumerate() {
            per_type[t.txn_type.index()].push(i);
        }
        TraceWorkload {
            trace,
            routing,
            table,
            gla,
            next_idx: 0,
            rr_next: 0,
            nodes,
            mean_accesses,
            type_weights: None,
            per_type,
            per_type_next: vec![0; types],
        }
    }

    /// Switches from order-preserving replay to per-type arrival rates
    /// (§3.1): arrivals draw a transaction *type* with probability
    /// proportional to `weights[type]`, then replay that type's
    /// instances in trace order (cycling).
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not cover every type, contains a
    /// negative weight, or assigns positive weight to a type with no
    /// instances.
    pub fn with_type_rates(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            self.per_type.len(),
            "one weight per transaction type"
        );
        for (t, &w) in weights.iter().enumerate() {
            assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
            assert!(
                w == 0.0 || !self.per_type[t].is_empty(),
                "type {t} has weight but no trace instances"
            );
        }
        assert!(weights.iter().sum::<f64>() > 0.0, "all-zero weights");
        self.type_weights = Some(weights);
        self
    }

    /// The routing table in use (node per transaction type).
    pub fn routing_table(&self) -> &RoutingTable {
        &self.table
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Workload for TraceWorkload {
    fn next(&mut self, rng: &mut Rng) -> (NodeId, TxnSpec) {
        self.next_with(rng, None)
    }

    fn next_with(&mut self, rng: &mut Rng, spare: Option<TxnSpec>) -> (NodeId, TxnSpec) {
        let idx = match &self.type_weights {
            None => {
                let i = self.next_idx;
                self.next_idx = (self.next_idx + 1) % self.trace.txns().len();
                i
            }
            Some(weights) => {
                let ty = rng.discrete(weights);
                let cursor = &mut self.per_type_next[ty];
                let list = &self.per_type[ty];
                let i = list[*cursor % list.len()];
                *cursor += 1;
                i
            }
        };
        let t = &self.trace.txns()[idx];
        let node = match self.routing {
            RoutingStrategy::Affinity => self.table.node_for(t.txn_type),
            RoutingStrategy::Random => {
                let n = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.nodes;
                NodeId::new(n)
            }
        };
        // Reuse a retired spec's reference buffer rather than cloning:
        // the largest trace transactions carry >10k references, so the
        // per-draw clone was the suite's heaviest remaining allocation.
        let mut refs = spare.map(TxnSpec::into_refs).unwrap_or_default();
        refs.extend_from_slice(&t.refs);
        (
            node,
            TxnSpec::new(t.txn_type, t.txn_type.index() as u64, refs),
        )
    }

    fn mean_accesses(&self) -> f64 {
        self.mean_accesses
    }

    fn partitions(&self) -> &[PartitionConfig] {
        self.trace.partitions()
    }

    fn gla_map(&self) -> GlaMap {
        self.gla.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::synthesize(&TraceGenConfig::default(), 7)
    }

    #[test]
    fn matches_paper_summary_statistics() {
        let stats = trace().stats();
        // §4.6: "more than 17.500 transactions of twelve transaction
        // types and about 1 million database accesses"
        assert!(stats.txn_count > 17_500, "{}", stats.txn_count);
        assert_eq!(stats.types, 12);
        assert!(
            (900_000..1_150_000).contains(&stats.total_refs),
            "{}",
            stats.total_refs
        );
        // "the largest transaction performs more than 11.000 accesses"
        assert!(stats.max_txn_refs > 11_000, "{}", stats.max_txn_refs);
        // "about 20% of the transactions perform updates, but only 1.6%
        // of all database accesses are writes"
        let update_frac = stats.update_txns as f64 / stats.txn_count as f64;
        assert!((0.17..0.23).contains(&update_frac), "{update_frac}");
        let write_frac = stats.write_refs as f64 / stats.total_refs as f64;
        assert!((0.012..0.020).contains(&write_frac), "{write_frac}");
        // "merely 66.000 different pages in 13 files were referenced"
        assert!(
            (50_000..80_000).contains(&stats.distinct_pages),
            "{}",
            stats.distinct_pages
        );
        // "database size is about 4 GB" (1M 4-KB pages)
        assert!((1_000_000..1_100_000).contains(&stats.db_pages));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Trace::synthesize(&TraceGenConfig::default(), 3);
        let b = Trace::synthesize(&TraceGenConfig::default(), 3);
        assert_eq!(a.txns().len(), b.txns().len());
        assert_eq!(a.txns()[0], b.txns()[0]);
        assert_eq!(a.txns()[100], b.txns()[100]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trace::synthesize(&TraceGenConfig::default(), 3);
        let b = Trace::synthesize(&TraceGenConfig::default(), 4);
        assert_ne!(a.txns()[0], b.txns()[0]);
    }

    #[test]
    fn thirteen_files_with_disks() {
        let t = trace();
        assert_eq!(t.partitions().len(), 13);
        for p in t.partitions() {
            assert!(p.locking);
            match p.storage {
                StorageAllocation::Disk { disks } => assert!(disks >= 2),
                _ => panic!("trace files live on plain disks"),
            }
        }
    }

    #[test]
    fn access_is_skewed() {
        // The hottest 10% of referenced pages should absorb far more
        // than 10% of references (non-uniform distribution).
        use std::collections::HashMap;
        let t = trace();
        let mut counts: HashMap<PageId, u64> = HashMap::new();
        for txn in t.txns() {
            for r in &txn.refs {
                *counts.entry(r.page).or_insert(0) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top10: u64 = freqs[..freqs.len() / 10].iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.4,
            "top-10% share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn workload_replays_in_order_and_cycles() {
        let t = trace();
        let first = t.txns()[0].clone();
        let len = t.txns().len();
        let mut w = TraceWorkload::new(t, 2, RoutingStrategy::Random);
        let mut rng = Rng::seed_from_u64(1);
        let (_, s0) = w.next(&mut rng);
        assert_eq!(s0.txn_type(), first.txn_type);
        assert_eq!(s0.refs(), &first.refs[..]);
        for _ in 1..len {
            w.next(&mut rng);
        }
        let (_, again) = w.next(&mut rng);
        assert_eq!(again.txn_type(), first.txn_type); // cycled
    }

    #[test]
    fn random_routing_balanced() {
        let t = trace();
        let mut w = TraceWorkload::new(t, 4, RoutingStrategy::Random);
        let mut rng = Rng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..1_000 {
            counts[w.next(&mut rng).0.index()] += 1;
        }
        assert_eq!(counts, [250; 4]);
    }

    #[test]
    fn affinity_routing_follows_table() {
        let t = trace();
        let mut w = TraceWorkload::new(t, 4, RoutingStrategy::Affinity);
        let table = w.routing_table().clone();
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..500 {
            let (node, spec) = w.next(&mut rng);
            assert_eq!(node, table.node_for(spec.txn_type()));
        }
    }
}

#[cfg(test)]
mod type_rate_tests {
    use super::*;

    #[test]
    fn per_type_rates_respect_weights() {
        let t = Trace::synthesize(&TraceGenConfig::default(), 7);
        let mut weights = vec![0.0; 12];
        weights[0] = 3.0;
        weights[4] = 1.0;
        let mut w = TraceWorkload::new(t, 2, RoutingStrategy::Random).with_type_rates(weights);
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0u32; 12];
        for _ in 0..8_000 {
            let (_, spec) = w.next(&mut rng);
            counts[spec.txn_type().index()] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), counts[0] + counts[4]);
        let ratio = counts[0] as f64 / counts[4] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_type_replay_preserves_within_type_order() {
        let t = Trace::synthesize(&TraceGenConfig::default(), 7);
        // expected: instances of type 2 in trace order
        let expected: Vec<&TraceTxn> = t
            .txns()
            .iter()
            .filter(|x| x.txn_type == TxnTypeId::new(2))
            .take(5)
            .collect();
        let expected: Vec<Vec<PageRef>> = expected.iter().map(|x| x.refs.clone()).collect();
        let mut weights = vec![0.0; 12];
        weights[2] = 1.0;
        let mut w = TraceWorkload::new(t, 1, RoutingStrategy::Random).with_type_rates(weights);
        let mut rng = Rng::seed_from_u64(1);
        for exp in expected {
            let (_, spec) = w.next(&mut rng);
            assert_eq!(spec.refs(), &exp[..]);
        }
    }

    #[test]
    #[should_panic(expected = "one weight per transaction type")]
    fn wrong_weight_count_panics() {
        let t = Trace::synthesize(&TraceGenConfig::default(), 7);
        let _ = TraceWorkload::new(t, 1, RoutingStrategy::Random).with_type_rates(vec![1.0]);
    }
}

#[cfg(test)]
mod from_txns_tests {
    use super::*;

    fn part(pages: u64) -> PartitionConfig {
        PartitionConfig {
            name: "U".into(),
            pages,
            locking: true,
            storage: StorageAllocation::disk(2),
        }
    }

    #[test]
    fn builds_user_supplied_trace() {
        let txns = vec![
            TraceTxn {
                txn_type: TxnTypeId::new(0),
                refs: vec![PageRef::read(PageId::new(PartitionId::new(0), 3))],
            },
            TraceTxn {
                txn_type: TxnTypeId::new(1),
                refs: vec![PageRef::write(PageId::new(PartitionId::new(0), 7))],
            },
        ];
        let t = Trace::from_txns(txns, vec![part(10)]);
        let s = t.stats();
        assert_eq!(s.txn_count, 2);
        assert_eq!(s.types, 2);
        assert_eq!(s.write_refs, 1);
        // and it drives the workload machinery
        let mut w = TraceWorkload::new(t, 2, RoutingStrategy::Affinity);
        let mut rng = Rng::seed_from_u64(1);
        let (_, spec) = w.next(&mut rng);
        assert_eq!(spec.refs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "beyond partition size")]
    fn rejects_out_of_range_pages() {
        let txns = vec![TraceTxn {
            txn_type: TxnTypeId::new(0),
            refs: vec![PageRef::read(PageId::new(PartitionId::new(0), 99))],
        }];
        let _ = Trace::from_txns(txns, vec![part(10)]);
    }

    #[test]
    #[should_panic(expected = "unknown partition")]
    fn rejects_unknown_partitions() {
        let txns = vec![TraceTxn {
            txn_type: TxnTypeId::new(0),
            refs: vec![PageRef::read(PageId::new(PartitionId::new(5), 0))],
        }];
        let _ = Trace::from_txns(txns, vec![part(10)]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn rejects_empty_trace() {
        let _ = Trace::from_txns(vec![], vec![part(10)]);
    }
}
