//! Randomized tests of the workload generators: every produced
//! transaction is well-formed for arbitrary geometries, routing is
//! balanced, and the affinity invariants of §3.1 hold.
//!
//! Cases are generated with desim's deterministic RNG (seeded,
//! reproducible) so the workspace builds and tests without any registry
//! dependency.

use dbshare_model::{RoutingStrategy, TxnSpec};
use dbshare_workload::debit_credit::{ACCOUNT, BT, HISTORY};
use dbshare_workload::{DebitCredit, DebitCreditWorkload, Workload};
use desim::Rng;

const CASES: u64 = 64;

fn check_spec(dc: &DebitCredit, spec: &TxnSpec) {
    let refs = spec.refs();
    assert_eq!(refs.len(), 3);
    assert_eq!(refs[0].page.partition(), ACCOUNT);
    assert_eq!(refs[1].page.partition(), HISTORY);
    assert_eq!(refs[2].page.partition(), BT);
    // pages in range
    assert!(refs[0].page.number() < dc.account_pages());
    assert!(refs[2].page.number() < dc.bt_pages());
    // the B/T reference covers the clustered BRANCH + TELLER records
    assert_eq!(refs[2].records, 2);
    assert_eq!(refs[0].records, 1);
    // all writes, history is an append
    assert!(refs.iter().all(|r| r.mode.is_write()));
    assert!(refs[1].append);
    // affinity key is the branch of the B/T page
    assert_eq!(spec.affinity_key(), refs[2].page.number());
}

#[test]
fn debit_credit_specs_are_well_formed() {
    let mut meta = Rng::seed_from_u64(0xD0C1);
    for _ in 0..CASES {
        let nodes = meta.range_inclusive(1, 11) as u16;
        let tps = meta.uniform(25.0, 400.0);
        let seed = meta.next_u64();
        let dc = DebitCredit::new(nodes, tps);
        let mut wl = DebitCreditWorkload::new(dc.clone(), tps, RoutingStrategy::Affinity);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let (node, spec) = wl.next(&mut rng);
            assert!(node.index() < nodes as usize);
            check_spec(&dc, &spec);
            // affinity routing sends the transaction to its branch's node
            assert_eq!(node, dc.branch_node(spec.affinity_key()));
        }
    }
}

#[test]
fn random_routing_is_perfectly_balanced() {
    let mut meta = Rng::seed_from_u64(0xD0C2);
    for _ in 0..CASES {
        let nodes = meta.range_inclusive(1, 9) as u16;
        let seed = meta.next_u64();
        let dc = DebitCredit::new(nodes, 100.0);
        let mut wl = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Random);
        let mut rng = Rng::seed_from_u64(seed);
        let rounds = 40usize;
        let mut counts = vec![0usize; nodes as usize];
        for _ in 0..rounds * nodes as usize {
            let (node, _) = wl.next(&mut rng);
            counts[node.index()] += 1;
        }
        // §3.1: "we merely ensure that every node is assigned about the
        // same number of transactions" — round-robin is exact.
        assert!(counts.iter().all(|&c| c == rounds), "{counts:?}");
    }
}

#[test]
fn geometry_identities_hold() {
    let mut meta = Rng::seed_from_u64(0xD0C3);
    for _ in 0..CASES {
        let nodes = meta.range_inclusive(1, 11) as u16;
        let tps = meta.uniform(25.0, 400.0);
        let dc = DebitCredit::new(nodes, tps);
        assert_eq!(dc.accounts_per_branch() * dc.branches(), dc.accounts());
        assert!(dc.account_pages() * 10 == dc.accounts());
        assert_eq!(dc.bt_pages(), dc.branches());
        // every account maps into its branch's page range
        for b in [0, dc.branches() / 2, dc.branches() - 1] {
            let first = b * dc.accounts_per_branch();
            let last = (b + 1) * dc.accounts_per_branch() - 1;
            assert_eq!(dc.account_branch(first), b);
            assert_eq!(dc.account_branch(last), b);
            let fp = dc.account_page(first).number();
            let lp = dc.account_page(last).number();
            assert!(fp <= lp);
            assert!(lp - fp < dc.account_pages_per_branch() + 1);
        }
    }
}

#[test]
fn branch_node_is_monotone_and_balanced() {
    for nodes in 1u16..12 {
        let dc = DebitCredit::new(nodes, 100.0);
        let mut counts = vec![0u64; nodes as usize];
        let mut last = 0usize;
        for b in 0..dc.branches() {
            let n = dc.branch_node(b).index();
            assert!(n >= last);
            last = n;
            counts[n] += 1;
        }
        let max = counts.iter().max().expect("non-empty");
        let min = counts.iter().min().expect("non-empty");
        assert!(max - min <= 1, "{counts:?}");
    }
}
