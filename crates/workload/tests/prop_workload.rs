//! Property-based tests of the workload generators: every produced
//! transaction is well-formed for arbitrary geometries, routing is
//! balanced, and the affinity invariants of §3.1 hold.

use dbshare_model::{RoutingStrategy, TxnSpec};
use dbshare_workload::debit_credit::{ACCOUNT, BT, HISTORY};
use dbshare_workload::{DebitCredit, DebitCreditWorkload, Workload};
use desim::Rng;
use proptest::prelude::*;

fn check_spec(dc: &DebitCredit, spec: &TxnSpec) -> Result<(), TestCaseError> {
    let refs = spec.refs();
    prop_assert_eq!(refs.len(), 3);
    prop_assert_eq!(refs[0].page.partition(), ACCOUNT);
    prop_assert_eq!(refs[1].page.partition(), HISTORY);
    prop_assert_eq!(refs[2].page.partition(), BT);
    // pages in range
    prop_assert!(refs[0].page.number() < dc.account_pages());
    prop_assert!(refs[2].page.number() < dc.bt_pages());
    // the B/T reference covers the clustered BRANCH + TELLER records
    prop_assert_eq!(refs[2].records, 2);
    prop_assert_eq!(refs[0].records, 1);
    // all writes, history is an append
    prop_assert!(refs.iter().all(|r| r.mode.is_write()));
    prop_assert!(refs[1].append);
    // affinity key is the branch of the B/T page
    prop_assert_eq!(spec.affinity_key(), refs[2].page.number());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn debit_credit_specs_are_well_formed(
        nodes in 1u16..12,
        tps in 25.0f64..400.0,
        seed in any::<u64>(),
    ) {
        let dc = DebitCredit::new(nodes, tps);
        let mut wl = DebitCreditWorkload::new(dc.clone(), tps, RoutingStrategy::Affinity);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            let (node, spec) = wl.next(&mut rng);
            prop_assert!(node.index() < nodes as usize);
            check_spec(&dc, &spec)?;
            // affinity routing sends the transaction to its branch's node
            prop_assert_eq!(node, dc.branch_node(spec.affinity_key()));
        }
    }

    #[test]
    fn random_routing_is_perfectly_balanced(
        nodes in 1u16..10,
        seed in any::<u64>(),
    ) {
        let dc = DebitCredit::new(nodes, 100.0);
        let mut wl = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Random);
        let mut rng = Rng::seed_from_u64(seed);
        let rounds = 40usize;
        let mut counts = vec![0usize; nodes as usize];
        for _ in 0..rounds * nodes as usize {
            let (node, _) = wl.next(&mut rng);
            counts[node.index()] += 1;
        }
        // §3.1: "we merely ensure that every node is assigned about the
        // same number of transactions" — round-robin is exact.
        prop_assert!(counts.iter().all(|&c| c == rounds), "{counts:?}");
    }

    #[test]
    fn geometry_identities_hold(nodes in 1u16..12, tps in 25.0f64..400.0) {
        let dc = DebitCredit::new(nodes, tps);
        prop_assert_eq!(dc.accounts_per_branch() * dc.branches(), dc.accounts());
        prop_assert!(dc.account_pages() * 10 == dc.accounts());
        prop_assert_eq!(dc.bt_pages(), dc.branches());
        // every account maps into its branch's page range
        for b in [0, dc.branches() / 2, dc.branches() - 1] {
            let first = b * dc.accounts_per_branch();
            let last = (b + 1) * dc.accounts_per_branch() - 1;
            prop_assert_eq!(dc.account_branch(first), b);
            prop_assert_eq!(dc.account_branch(last), b);
            let fp = dc.account_page(first).number();
            let lp = dc.account_page(last).number();
            prop_assert!(fp <= lp);
            prop_assert!(lp - fp < dc.account_pages_per_branch() + 1);
        }
    }

    #[test]
    fn branch_node_is_monotone_and_balanced(nodes in 1u16..12) {
        let dc = DebitCredit::new(nodes, 100.0);
        let mut counts = vec![0u64; nodes as usize];
        let mut last = 0usize;
        for b in 0..dc.branches() {
            let n = dc.branch_node(b).index();
            prop_assert!(n >= last);
            last = n;
            counts[n] += 1;
        }
        let max = counts.iter().max().expect("non-empty");
        let min = counts.iter().min().expect("non-empty");
        prop_assert!(max - min <= 1, "{counts:?}");
    }
}
