//! Close vs. loose coupling on the debit-credit workload: the headline
//! comparison of the paper (§4.5).
//!
//! Sweeps 1–10 nodes under random routing (the hard case for loose
//! coupling) and prints response time, CPU utilization, message counts,
//! and the PCL local-lock share side by side.
//!
//! ```text
//! cargo run --release --example coupling_comparison
//! ```

use dbshare::prelude::*;

fn run(nodes: u16, coupling: CouplingMode) -> RunReport {
    debit_credit_run(DebitCreditRun {
        nodes,
        coupling,
        routing: RoutingStrategy::Random,
        update: UpdateStrategy::NoForce,
        buffer: 200,
        ..DebitCreditRun::baseline(nodes, RunLength::quick())
    })
}

fn main() {
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "nodes", "GEM resp", "PCL resp", "GEM cpu%", "PCL cpu%", "PCL msgs", "PCL local"
    );
    for nodes in [1u16, 2, 4, 6, 8, 10] {
        let gem = run(nodes, CouplingMode::GemLocking);
        let pcl = run(nodes, CouplingMode::Pcl);
        println!(
            "{:<6} {:>10.1}ms {:>10.1}ms {:>9.1}% {:>9.1}% {:>10.2} {:>9.0}%",
            nodes,
            gem.mean_response_ms,
            pcl.mean_response_ms,
            gem.cpu_utilization * 100.0,
            pcl.cpu_utilization * 100.0,
            pcl.messages_per_txn,
            pcl.local_lock_fraction.unwrap_or(0.0) * 100.0,
        );
    }
    println!(
        "\nExpected shapes (§4.5): GEM locking response times stay nearly\n\
         flat; PCL degrades with the node count because its local-lock\n\
         share falls like 1/N under random routing (50% at 2 nodes, 10%\n\
         at 10), costing >=20k instructions per remote request."
    );
}
