//! Plugging a custom workload into the simulator: implement
//! [`Workload`] for a synthetic hotspot workload and study lock
//! contention and deadlock behaviour under both coupling modes.
//!
//! Unlike debit-credit (which is deadlock-free by ordered access), this
//! workload references pages in *random* order with a high write share,
//! so the deadlock detector actually earns its keep.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use dbshare::desim::Rng;
use dbshare::model::gla::{GlaMap, PartitionGla};
use dbshare::model::{PageId, TxnTypeId};
use dbshare::prelude::*;
use dbshare::workload::Workload;

/// An 80/20 hotspot workload: each transaction touches `refs_per_txn`
/// pages of one partition, 80% of them inside a small hot set, each
/// with a configurable write probability, in random order.
struct Hotspot {
    nodes: u16,
    pages: u64,
    hot_pages: u64,
    refs_per_txn: usize,
    write_frac: f64,
    partitions: Vec<PartitionConfig>,
    rr: u16,
}

impl Hotspot {
    fn new(nodes: u16, pages: u64, hot_pages: u64, refs_per_txn: usize, write_frac: f64) -> Self {
        Hotspot {
            nodes,
            pages,
            hot_pages,
            refs_per_txn,
            write_frac,
            partitions: vec![PartitionConfig {
                name: "HOT".into(),
                pages,
                locking: true,
                storage: StorageAllocation::disk(8 * nodes as u32),
            }],
            rr: 0,
        }
    }
}

impl Workload for Hotspot {
    fn next(&mut self, rng: &mut Rng) -> (dbshare::model::NodeId, TxnSpec) {
        let node = dbshare::model::NodeId::new(self.rr);
        self.rr = (self.rr + 1) % self.nodes;
        let mut refs = Vec::with_capacity(self.refs_per_txn);
        let mut seen = std::collections::HashSet::new();
        while refs.len() < self.refs_per_txn {
            let page = if rng.chance(0.8) {
                rng.below(self.hot_pages)
            } else {
                self.hot_pages + rng.below(self.pages - self.hot_pages)
            };
            if !seen.insert(page) {
                continue; // distinct pages: isolates deadlocks to cross-txn order
            }
            let id = PageId::new(dbshare::model::PartitionId::new(0), page);
            refs.push(if rng.chance(self.write_frac) {
                PageRef::write(id)
            } else {
                PageRef::read(id)
            });
        }
        (node, TxnSpec::new(TxnTypeId::new(0), 0, refs))
    }

    fn mean_accesses(&self) -> f64 {
        self.refs_per_txn as f64
    }

    fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }

    fn gla_map(&self) -> GlaMap {
        // Hash pages across nodes: no locality to exploit.
        GlaMap::new(self.nodes, vec![PartitionGla::Hashed])
    }
}

fn run(write_frac: f64, coupling: CouplingMode) -> RunReport {
    let nodes = 4;
    let mut cfg = SystemConfig::debit_credit(nodes);
    cfg.coupling = coupling;
    cfg.update = UpdateStrategy::NoForce;
    cfg.arrival_tps_per_node = 50.0;
    cfg.cpu.per_access_instr = 20_000.0;
    cfg.buffer_pages_per_node = 500;
    cfg.run.warmup_txns = 300;
    cfg.run.measured_txns = 3_000;
    let wl = Hotspot::new(nodes, 40_000, 400, 8, write_frac);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid config").run()
}

fn main() {
    println!(
        "{:<10} {:<6} {:>10} {:>12} {:>10} {:>10}",
        "writes", "mode", "resp", "lock wait", "deadlocks", "conflicts"
    );
    for write_frac in [0.0, 0.02, 0.08] {
        for (coupling, label) in [
            (CouplingMode::GemLocking, "GEM"),
            (CouplingMode::Pcl, "PCL"),
        ] {
            let r = run(write_frac, coupling);
            println!(
                "{:<10} {:<6} {:>8.1}ms {:>10.2}ms {:>10} {:>10.3}",
                format!("{:.0}%", write_frac * 100.0),
                label,
                r.mean_response_ms,
                r.lock_wait_ms,
                r.deadlock_aborts,
                r.lock_waits_per_txn,
            );
        }
    }
    println!(
        "\nRandom-order accesses with a hot set: lock waits and deadlock\n\
         aborts grow with the write share — the machinery debit-credit\n\
         never exercises (its ordered accesses cannot deadlock, §3.1)."
    );
}
