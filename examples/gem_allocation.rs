//! Storage allocation of a hot file (§4.4): what buying fast shared
//! storage for the BRANCH/TELLER partition does under FORCE.
//!
//! Compares plain disks, a volatile shared disk cache, a non-volatile
//! one, and full GEM residence, for both routing strategies.
//!
//! ```text
//! cargo run --release --example gem_allocation
//! ```

use dbshare::prelude::*;

fn main() {
    let nodes = 8;
    let variants = [
        (BtStorage::Disk, "magnetic disks"),
        (BtStorage::VolatileCache, "volatile disk cache"),
        (BtStorage::NvCache, "non-volatile disk cache"),
        (BtStorage::Gem, "GEM resident"),
    ];
    println!("FORCE, buffer 1000, {nodes} nodes, 100 TPS each\n");
    println!(
        "{:<26} {:>14} {:>14} {:>12}",
        "BRANCH/TELLER storage", "random resp", "affinity resp", "B/T hit(rnd)"
    );
    for (bt, label) in variants {
        let mut resp = [0.0f64; 2];
        let mut hit = 0.0;
        for (i, routing) in [RoutingStrategy::Random, RoutingStrategy::Affinity]
            .into_iter()
            .enumerate()
        {
            let report = debit_credit_run(DebitCreditRun {
                nodes,
                routing,
                update: UpdateStrategy::Force,
                buffer: 1_000,
                bt,
                ..DebitCreditRun::baseline(nodes, RunLength::quick())
            });
            resp[i] = report.mean_response_ms;
            if i == 0 {
                hit = report.hit_ratio("BRANCH/TELLER").unwrap_or(0.0);
            }
        }
        println!(
            "{:<26} {:>12.1}ms {:>12.1}ms {:>11.0}%",
            label,
            resp[0],
            resp[1],
            hit * 100.0
        );
    }
    println!(
        "\nExpected (Fig. 4.4): the non-volatile cache and GEM absorb the\n\
         force-write and serve every miss from shared semiconductor\n\
         memory, so random routing approaches affinity routing — buffer\n\
         invalidations stop mattering."
    );
}
