//! Failure injection (reproduction extension): crash one of four nodes
//! mid-run and watch how much work each coupling loses — the paper's
//! §1 availability argument, quantified.
//!
//! The non-volatile GEM preserves the global lock table across the
//! crash, so only the dead node's own transactions abort. Under loose
//! coupling the dead node's lock-authority state is volatile: every
//! transaction in the system holding or waiting for a lock there dies
//! with it, and requests to that authority stall until recovery.
//!
//! ```text
//! cargo run --release --example node_failure
//! ```

use dbshare::model::{CouplingMode, CrashConfig, RoutingStrategy, SystemConfig};
use dbshare::prelude::*;
use dbshare::workload::Workload;
use dbshare_bench::chart::Chart;

fn run(coupling: CouplingMode) -> RunReport {
    let tps = 100.0;
    let nodes = 4;
    let mut cfg = SystemConfig::debit_credit(nodes);
    cfg.coupling = coupling;
    cfg.routing = RoutingStrategy::Random;
    cfg.crash = Some(CrashConfig {
        node: 1,
        at_secs: 5.0,
        recovery_secs: 3.0,
    });
    cfg.run.warmup_txns = 400;
    cfg.run.measured_txns = 6_000;
    let dc = DebitCredit::new(nodes, tps);
    let wl = DebitCreditWorkload::new(dc, tps, RoutingStrategy::Random);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid").run()
}

fn main() {
    println!("4 nodes x 100 TPS, node 1 crashes at t=5s, recovers at t=8s\n");
    let mut chart = Chart::new(
        "Node crash at t=5s (recovery 3s): commits per second",
        "simulated seconds",
        "commits/s",
    );
    for (coupling, label) in [
        (CouplingMode::GemLocking, "GEM locking"),
        (CouplingMode::Pcl, "primary copy locking"),
    ] {
        let r = run(coupling);
        println!(
            "{label:<22} crash aborts: {:>5}   per-node cpu: {:?}",
            r.crash_aborts,
            r.cpu_utilization_per_node
                .iter()
                .map(|u| format!("{:.0}%", u * 100.0))
                .collect::<Vec<_>>(),
        );
        chart.add_series(
            label,
            r.throughput_timeline
                .iter()
                .enumerate()
                .map(|(s, &c)| (s as f64, c as f64))
                .collect(),
        );
    }
    let path = "svg/node_failure.svg";
    std::fs::create_dir_all("svg").expect("create svg dir");
    std::fs::write(path, chart.render(860, 480)).expect("write svg");
    println!("\nwrote {path} (the loose coupling's dip is deeper: its");
    println!("lock-authority state died with the node)");
}
