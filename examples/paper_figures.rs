//! Regenerates two headline figures at reduced scale and writes them as
//! SVG charts — the same rendering the `repro` binary uses with
//! `--svg`, shown here through the library API. Both figures' runs are
//! flattened into one job list and executed on the `dbshare-harness`
//! worker pool, exactly like `repro` does.
//!
//! ```text
//! cargo run --release --example paper_figures [output-dir]
//! ```

use dbshare::prelude::*;
use dbshare_bench::chart::Chart;
use dbshare_harness::{Harness, Sweep};

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "figures".into());
    std::fs::create_dir_all(&dir).expect("create output directory");
    let nodes = [1u16, 2, 4, 6, 8, 10];
    let run = RunLength::quick();

    // One pool run covers both figures; per-job progress goes to
    // stderr, and the reassembled series are identical to calling
    // experiments::fig41 / fig46 directly.
    let outcome = Harness::new().progress(true).run(vec![
        Sweep {
            figure: "fig41".into(),
            grid: experiments::fig41_grid(&nodes, run),
        },
        Sweep {
            figure: "fig46".into(),
            grid: experiments::fig46_grid(&nodes, run),
        },
    ]);

    // Fig. 4.1: GEM locking, routing × update strategy.
    let mut fig41 = Chart::new(
        "Fig. 4.1 - GEM locking: routing x update strategy (buffer 200)",
        "nodes",
        "mean response time [ms]",
    );
    for series in outcome.series_for("fig41").expect("fig41 was submitted") {
        fig41.add_series(
            &series.label,
            series
                .points
                .iter()
                .map(|(n, r)| (*n as f64, r.mean_response_ms))
                .collect(),
        );
    }
    let path = format!("{dir}/fig41.svg");
    std::fs::write(&path, fig41.render(860, 480)).expect("write svg");
    println!("wrote {path}");

    // Fig. 4.6: throughput per node at 80% CPU.
    let mut fig46 = Chart::new(
        "Fig. 4.6 - throughput per node at 80% CPU utilization (buffer 1000)",
        "nodes",
        "TPS per node at 80% CPU",
    );
    for series in outcome.series_for("fig46").expect("fig46 was submitted") {
        fig46.add_series(
            &series.label,
            series
                .points
                .iter()
                .map(|(n, r)| (*n as f64, r.tps_per_node_at_80pct_cpu))
                .collect(),
        );
    }
    let path = format!("{dir}/fig46.svg");
    std::fs::write(&path, fig46.render(860, 480)).expect("write svg");
    println!("wrote {path}");

    println!(
        "\nOpen the SVGs in a browser; compare against the shapes in\n\
         EXPERIMENTS.md. The full-length versions come from:\n\
         cargo run --release -p dbshare-bench --bin repro -- --svg {dir}"
    );
}
