//! Quick start: simulate one node running the debit-credit workload
//! with Table 4.1 parameters and print the full report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dbshare::prelude::*;

fn main() {
    // Table 4.1 defaults: 100 TPS, 4×10 MIPS CPUs, 200-page buffer,
    // GEM locking, NOFORCE, all files on magnetic disks.
    let mut cfg = SystemConfig::debit_credit(1);
    cfg.run.warmup_txns = 1_000;
    cfg.run.measured_txns = 10_000;

    let geometry = DebitCredit::new(1, cfg.arrival_tps_per_node);
    println!(
        "database: {} branches, {} accounts ({} ACCOUNT pages)",
        geometry.branches(),
        geometry.accounts(),
        geometry.account_pages()
    );

    let workload = DebitCreditWorkload::new(geometry, cfg.arrival_tps_per_node, cfg.routing);
    let report = Engine::new(cfg, Box::new(workload))
        .expect("valid configuration")
        .run();

    println!("{report}");
    println!(
        "\nThe paper's central case: ~71% BRANCH/TELLER hit ratio at a\n\
         200-page buffer and >=62.5% CPU utilization — this run: {:.0}% and {:.1}%.",
        report.hit_ratio("BRANCH/TELLER").unwrap_or(0.0) * 100.0,
        report.cpu_utilization * 100.0
    );
}
