//! The real-life workload (§4.6): synthesize the trace, show that it
//! matches every summary statistic the paper reports, and run the
//! close-vs-loose comparison at 4 nodes.
//!
//! ```text
//! cargo run --release --example trace_workload
//! ```

use dbshare::prelude::*;
use dbshare::workload::routing;

fn main() {
    let trace = Trace::synthesize(&TraceGenConfig::default(), 42);
    let stats = trace.stats();
    println!("synthetic trace (substituting the paper's proprietary trace):");
    println!("  transactions        : {}", stats.txn_count);
    println!("  transaction types   : {}", stats.types);
    println!("  page references     : {}", stats.total_refs);
    println!(
        "  write references    : {} ({:.1}%)",
        stats.write_refs,
        stats.write_refs as f64 / stats.total_refs as f64 * 100.0
    );
    println!(
        "  update transactions : {} ({:.0}%)",
        stats.update_txns,
        stats.update_txns as f64 / stats.txn_count as f64 * 100.0
    );
    println!("  distinct pages      : {}", stats.distinct_pages);
    println!("  largest transaction : {} accesses", stats.max_txn_refs);
    println!(
        "  database size       : {} pages (~{:.1} GB at 4 KB)",
        stats.db_pages,
        stats.db_pages as f64 * 4.0 / 1e6
    );

    // The routing-table heuristic and its locality.
    for nodes in [2u16, 4, 8] {
        let table = routing::affinity_table(&trace, nodes);
        let gla = routing::gla_chunks(&trace, &table, nodes, 512);
        let share = routing::local_lock_share(&trace, &table, &gla);
        println!(
            "  affinity routing, {nodes} nodes: raw local-lock share {:.0}%",
            share * 100.0
        );
    }

    println!("\nrunning 4-node comparison (50 TPS/node, NOFORCE, buffer 1000)...\n");
    for (coupling, label) in [
        (CouplingMode::GemLocking, "GEM locking"),
        (CouplingMode::Pcl, "primary copy locking"),
    ] {
        for routing in [RoutingStrategy::Random, RoutingStrategy::Affinity] {
            let report = trace_run(TraceRun {
                nodes: 4,
                coupling,
                routing,
                read_optimization: true,
                run: RunLength::quick(),
                seed: 42,
            });
            println!(
                "{label:<22} {routing:>8?}: norm resp {:>8.1}ms  cpu {:>5.1}% (max {:>5.1}%)  local locks {}",
                report.norm_response_ms,
                report.cpu_utilization * 100.0,
                report.cpu_utilization_max * 100.0,
                report
                    .local_lock_fraction
                    .map(|l| format!("{:.0}%", l * 100.0))
                    .unwrap_or_else(|| "n/a".into()),
            );
        }
    }
    println!(
        "\nExpected (Fig. 4.7): close coupling clearly outperforms loose\n\
         coupling; the gap is largest for random routing, where PCL's\n\
         message overhead saturates the CPUs."
    );
}
