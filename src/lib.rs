//! # dbshare — closely vs. loosely coupled database sharing, simulated
//!
//! A full reproduction of Erhard Rahm's ICDCS 1993 paper *"Evaluation
//! of Closely Coupled Systems for High Performance Database
//! Processing"* as a Rust workspace: a deterministic discrete-event
//! simulation of shared-disk (database sharing) systems that compares
//!
//! * **close coupling** — a Global Extended Memory (GEM) holding a
//!   global lock table accessed with synchronous ~2 µs entry
//!   operations, usable as page store and page-transfer channel — with
//! * **loose coupling** — the primary copy locking protocol (PCL) with
//!   distributed lock authorities and message passing.
//!
//! This crate is the facade: it re-exports the public API of every
//! workspace crate. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the figure-by-figure reproduction record.
//!
//! ## Quick start
//!
//! ```rust
//! use dbshare::prelude::*;
//!
//! // One node, Table 4.1 defaults, short run.
//! let mut cfg = SystemConfig::debit_credit(1);
//! cfg.run.warmup_txns = 100;
//! cfg.run.measured_txns = 500;
//! let dc = DebitCredit::new(1, 100.0);
//! let wl = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity);
//! let report = Engine::new(cfg, Box::new(wl)).unwrap().run();
//! assert!(report.mean_response_ms > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`desim`] | discrete-event engine: calendar, servers, RNG, stats |
//! | [`dbshare_model`] | ids, configuration, GLA maps |
//! | [`dbshare_workload`] | debit-credit + synthetic traces, routing |
//! | [`dbshare_storage`] | disks, disk caches, GEM, network |
//! | [`dbshare_lockmgr`] | 2PL tables, GEM GLT, PCL, deadlock detection |
//! | [`dbshare_node`] | buffer manager, CPU cost model |
//! | [`dbshare_sim`] | the engine, metrics, experiment presets |
//! | [`dbshare_harness`] | parallel sweep orchestration, JSON run artifacts |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dbshare_harness as harness;
pub use dbshare_lockmgr as lockmgr;
pub use dbshare_model as model;
pub use dbshare_node as node;
pub use dbshare_sim as sim;
pub use dbshare_storage as storage;
pub use dbshare_workload as workload;
pub use desim;

/// Convenient single import for examples and applications.
pub mod prelude {
    pub use dbshare_harness::{Harness, Job, JobResult, Outcome, Sweep};
    pub use dbshare_model::{
        CouplingMode, NodeId, PageId, PageRef, PartitionConfig, PartitionId, RoutingStrategy,
        StorageAllocation, SystemConfig, TxnId, TxnSpec, UpdateStrategy,
    };
    pub use dbshare_sim::experiments::{
        self, debit_credit_run, debit_credit_run_with, trace_run, BtStorage, DebitCreditRun,
        RunLength, TraceRun,
    };
    pub use dbshare_sim::{Engine, RunReport};
    pub use dbshare_workload::{
        DebitCredit, DebitCreditWorkload, Trace, TraceGenConfig, TraceWorkload, Workload,
    };
}
