//! Engine-level invariants: determinism, conservation, admission
//! control, and abort/restart machinery.

use dbshare::desim::Rng;
use dbshare::model::gla::{GlaMap, PartitionGla};
use dbshare::model::{NodeId, PageId, PartitionId, TxnTypeId};
use dbshare::prelude::*;
use dbshare::workload::Workload;

fn quick() -> RunLength {
    RunLength {
        warmup: 200,
        measured: 1_500,
    }
}

#[test]
fn identical_seeds_give_identical_reports() {
    let a = debit_credit_run(DebitCreditRun::baseline(3, quick()));
    let b = debit_credit_run(DebitCreditRun::baseline(3, quick()));
    assert_eq!(a, b, "simulation must be deterministic");
}

#[test]
fn different_seeds_give_different_but_close_results() {
    let a = debit_credit_run(DebitCreditRun {
        seed: 1,
        ..DebitCreditRun::baseline(3, quick())
    });
    let b = debit_credit_run(DebitCreditRun {
        seed: 2,
        ..DebitCreditRun::baseline(3, quick())
    });
    assert_ne!(a.mean_response_ms, b.mean_response_ms);
    // statistically the same system: means within 10%
    let rel = (a.mean_response_ms - b.mean_response_ms).abs() / a.mean_response_ms;
    assert!(rel < 0.10, "seeds diverge too much: {rel}");
}

#[test]
fn measured_transaction_count_is_exact() {
    let r = debit_credit_run(DebitCreditRun::baseline(2, quick()));
    assert_eq!(r.measured_txns, quick().measured);
}

#[test]
fn response_time_exceeds_minimum_io_path() {
    // NOFORCE: every transaction reads its ACCOUNT page from disk
    // (16.4 ms) and writes one log page (6.4 ms): response cannot be
    // below ~23 ms plus CPU.
    let r = debit_credit_run(DebitCreditRun::baseline(1, quick()));
    assert!(r.mean_response_ms > 23.0, "{}", r.mean_response_ms);
    assert!(r.p50_response_ms > 23.0);
    assert!(r.p95_response_ms >= r.p50_response_ms);
}

#[test]
fn tight_mpl_produces_input_queueing() {
    let tps = 100.0;
    let mut cfg = SystemConfig::debit_credit(1);
    cfg.mpl_per_node = 2; // far below the ~6 concurrent transactions needed
    cfg.run.warmup_txns = 200;
    cfg.run.measured_txns = 1_000;
    let dc = DebitCredit::new(1, tps);
    let wl = DebitCreditWorkload::new(dc, tps, RoutingStrategy::Affinity);
    let r = Engine::new(cfg, Box::new(wl)).expect("valid").run();
    assert!(
        r.input_wait_ms > 5.0,
        "MPL=2 must queue arrivals, wait {}",
        r.input_wait_ms
    );
}

#[test]
fn paper_mpl_produces_no_input_queueing() {
    // §4.1: "The multiprogramming level has been chosen high enough to
    // avoid queuing delays at the transaction manager."
    let r = debit_credit_run(DebitCreditRun::baseline(4, quick()));
    assert!(r.input_wait_ms < 1.0, "input wait {}", r.input_wait_ms);
}

/// A deliberately deadlock-prone workload: two-page transactions that
/// write a small page set in random order.
struct DeadlockProne {
    nodes: u16,
    pages: u64,
    partitions: Vec<PartitionConfig>,
    rr: u16,
}

impl Workload for DeadlockProne {
    fn next(&mut self, rng: &mut Rng) -> (NodeId, TxnSpec) {
        let node = NodeId::new(self.rr);
        self.rr = (self.rr + 1) % self.nodes;
        let a = rng.below(self.pages);
        let b = {
            let x = rng.below(self.pages - 1);
            if x >= a {
                x + 1
            } else {
                x
            }
        };
        let refs = vec![
            PageRef::write(PageId::new(PartitionId::new(0), a)),
            PageRef::write(PageId::new(PartitionId::new(0), b)),
        ];
        (node, TxnSpec::new(TxnTypeId::new(0), a, refs))
    }
    fn mean_accesses(&self) -> f64 {
        2.0
    }
    fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }
    fn gla_map(&self) -> GlaMap {
        GlaMap::new(self.nodes, vec![PartitionGla::Hashed])
    }
}

#[test]
fn deadlocks_are_detected_and_resolved() {
    let nodes = 2;
    let mut cfg = SystemConfig::debit_credit(nodes);
    // Low concurrency (about one transaction in flight at a time, with
    // occasional overlap) over a tiny page set: overlapping pairs often
    // grab the same two pages in opposite order — a genuine deadlock —
    // while queues stay too short for FIFO convoys. All-write
    // transactions over a tiny hot set at higher rates livelock under
    // strict 2PL (every grant head waits on its own second queue),
    // which is the lock *timeout's* job, not the detector's.
    cfg.arrival_tps_per_node = 5.0;
    cfg.cpu.per_access_instr = 10_000.0;
    cfg.buffer_pages_per_node = 64;
    cfg.run.warmup_txns = 100;
    cfg.run.measured_txns = 3_000;
    let wl = DeadlockProne {
        nodes,
        pages: 4, // two overlapping txns conflict with high probability
        partitions: vec![PartitionConfig {
            name: "HOT".into(),
            pages: 4,
            locking: true,
            storage: StorageAllocation::disk(4),
        }],
        rr: 0,
    };
    cfg.partitions = Workload::partitions(&wl).to_vec();
    let r = Engine::new(cfg, Box::new(wl)).expect("valid").run();
    // The run completes (aborted victims restart and eventually commit)
    assert_eq!(r.measured_txns, 3_000);
    assert!(
        r.deadlock_aborts > 0,
        "this workload must produce deadlocks"
    );
    // At this low concurrency every cycle is caught by detection; the
    // timeout safety net stays quiet. (All-write transactions over a
    // tiny hot set at higher rates convoy-collapse under strict 2PL —
    // queues feed on themselves — and then timeouts fire by design.)
    assert_eq!(r.timeout_aborts, 0, "timeouts mean detection failed");
    assert!(
        r.throughput_tps > 9.0,
        "offered load sustained: {}",
        r.throughput_tps
    );
}

#[test]
fn both_protocols_handle_the_deadlock_prone_workload() {
    for coupling in [CouplingMode::GemLocking, CouplingMode::Pcl] {
        let nodes = 2;
        let mut cfg = SystemConfig::debit_credit(nodes);
        cfg.coupling = coupling;
        cfg.arrival_tps_per_node = 5.0;
        cfg.cpu.per_access_instr = 10_000.0;
        cfg.buffer_pages_per_node = 64;
        cfg.run.warmup_txns = 100;
        cfg.run.measured_txns = 1_500;
        let wl = DeadlockProne {
            nodes,
            pages: 4,
            partitions: vec![PartitionConfig {
                name: "HOT".into(),
                pages: 4,
                locking: true,
                storage: StorageAllocation::disk(4),
            }],
            rr: 0,
        };
        cfg.partitions = Workload::partitions(&wl).to_vec();
        let r = Engine::new(cfg, Box::new(wl)).expect("valid").run();
        assert_eq!(r.measured_txns, 1_500, "{coupling:?} run must complete");
    }
}

#[test]
fn force_and_noforce_conserve_io_accounting() {
    // Every transaction writes 3 pages; FORCE must write them all at
    // commit, NOFORCE must eventually write them back on replacement
    // (in steady state, writes-per-txn ≈ modified-pages-per-txn).
    let force = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::Force,
        ..DebitCreditRun::baseline(2, quick())
    });
    // 3 force-writes + 1 log write
    assert!(
        (3.8..4.2).contains(&force.writes_per_txn),
        "{}",
        force.writes_per_txn
    );
    assert!(
        force.evict_writes_per_txn < 0.05,
        "{}",
        force.evict_writes_per_txn
    );

    let noforce = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::NoForce,
        ..DebitCreditRun::baseline(2, quick())
    });
    assert!(
        (0.9..1.1).contains(&noforce.writes_per_txn),
        "{}",
        noforce.writes_per_txn
    );
    // ACCOUNT pages (1/txn) must eventually be written back; B/T pages
    // are mostly re-dirtied in place and HISTORY pages written per 20
    // appends: expect a bit over 1 per transaction.
    assert!(
        (0.8..2.0).contains(&noforce.evict_writes_per_txn),
        "{}",
        noforce.evict_writes_per_txn
    );
}

#[test]
fn config_validation_rejects_broken_setups() {
    let dc = DebitCredit::new(1, 100.0);
    let wl = DebitCreditWorkload::new(dc, 100.0, RoutingStrategy::Affinity);
    let mut cfg = SystemConfig::debit_credit(1);
    cfg.buffer_pages_per_node = 0;
    assert!(Engine::new(cfg, Box::new(wl)).is_err());
}

#[test]
fn response_time_composition_sums_to_the_mean() {
    // input + lock + io + cpu-queue + cpu-service ≈ response: the
    // engine attributes every waiting millisecond to exactly one bucket.
    for update in [UpdateStrategy::NoForce, UpdateStrategy::Force] {
        let r = debit_credit_run(DebitCreditRun {
            update,
            ..DebitCreditRun::baseline(2, quick())
        });
        let sum =
            r.input_wait_ms + r.lock_wait_ms + r.io_wait_ms + r.cpu_wait_ms + r.cpu_service_ms;
        let rel = (sum - r.mean_response_ms).abs() / r.mean_response_ms;
        assert!(
            rel < 0.03,
            "{update:?}: components {sum:.1} vs response {:.1} (rel {rel:.3})",
            r.mean_response_ms
        );
    }
}

#[test]
fn sim_time_cap_truncates_overloaded_runs() {
    // 400 TPS offered to one 40-MIPS node (the pure path length alone
    // needs 100 MIPS): the open system can never reach its target;
    // the cap ends it and flags the report.
    let tps = 400.0;
    let mut cfg = SystemConfig::debit_credit(1);
    cfg.arrival_tps_per_node = tps;
    cfg.run.warmup_txns = 0;
    cfg.run.measured_txns = 1_000_000;
    cfg.run.max_sim_secs = Some(2.0);
    let dc = DebitCredit::new(1, tps);
    let wl = DebitCreditWorkload::new(dc, tps, RoutingStrategy::Affinity);
    let r = Engine::new(cfg, Box::new(wl)).expect("valid").run();
    assert!(r.truncated, "overloaded run must be truncated");
    assert!(r.measured_txns < 1_000_000);
    assert!(r.sim_seconds <= 2.1, "{}", r.sim_seconds);
    assert!(r.cpu_utilization > 0.9, "saturated: {}", r.cpu_utilization);
}

#[test]
fn sim_time_cap_does_not_touch_healthy_runs() {
    let mut p = DebitCreditRun::baseline(1, quick());
    p.seed = 42;
    let plain = debit_credit_run(p);
    // generous cap: identical results, no truncation
    let tps = 100.0;
    let mut cfg = SystemConfig::debit_credit(1);
    cfg.run.warmup_txns = quick().warmup;
    cfg.run.measured_txns = quick().measured;
    cfg.run.seed = 42;
    cfg.run.max_sim_secs = Some(10_000.0);
    let dc = DebitCredit::new(1, tps);
    let wl = DebitCreditWorkload::new(dc, tps, RoutingStrategy::Affinity);
    let capped = Engine::new(cfg, Box::new(wl)).expect("valid").run();
    assert!(!capped.truncated);
    assert_eq!(capped.mean_response_ms, plain.mean_response_ms);
}

#[test]
fn global_log_covers_every_update_commit() {
    // Every debit-credit transaction is an update: the merged (and
    // engine-validated) global log holds one record per commit,
    // including warm-up.
    let r = debit_credit_run(DebitCreditRun::baseline(3, quick()));
    assert_eq!(r.global_log_records, quick().warmup + quick().measured);
}

#[test]
fn per_node_utilizations_are_reported_and_consistent() {
    let r = debit_credit_run(DebitCreditRun::baseline(3, quick()));
    assert_eq!(r.cpu_utilization_per_node.len(), 3);
    let avg: f64 =
        r.cpu_utilization_per_node.iter().sum::<f64>() / r.cpu_utilization_per_node.len() as f64;
    assert!((avg - r.cpu_utilization).abs() < 1e-9);
    let max = r
        .cpu_utilization_per_node
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    assert!((max - r.cpu_utilization_max).abs() < 1e-9);
    assert!(
        r.events_processed > r.measured_txns * 10,
        "{}",
        r.events_processed
    );
}

#[test]
fn scales_to_32_nodes() {
    // Well beyond the paper's 10-node range: 32 nodes at 100 TPS each
    // (3 200 TPS aggregate, a 320M-account database) — no overflow, no
    // imbalance, stable open system.
    let r = debit_credit_run(DebitCreditRun {
        run: RunLength {
            warmup: 200,
            measured: 3_000,
        },
        ..DebitCreditRun::baseline(32, quick())
    });
    assert_eq!(r.measured_txns, 3_000);
    assert_eq!(r.cpu_utilization_per_node.len(), 32);
    assert!(
        (r.throughput_tps - 3_200.0).abs() < 160.0,
        "{}",
        r.throughput_tps
    );
    // (per-node utilizations fluctuate over this ~1-second window; the
    // point of this test is scale, not balance)
    assert!(
        (0.5..0.95).contains(&r.cpu_utilization),
        "{}",
        r.cpu_utilization
    );
    assert_eq!(r.timeout_aborts, 0);
}
