//! Tests of the reproduction's extension features: the §2 GEM usage
//! forms beyond the paper's figures (GEM-resident logs, GEM write
//! buffers, GEM page transfers) and the [Ra92a] claim the paper cites.

use dbshare::model::{LogStorage, PageTransferMode};
use dbshare::prelude::*;

fn quick() -> RunLength {
    RunLength {
        warmup: 400,
        measured: 2_500,
    }
}

#[test]
fn gem_log_removes_the_log_disk_delay() {
    // §2 usage form 1: keeping the log in GEM replaces the 6.4 ms log
    // write with a ~50 µs GEM write, visible in NOFORCE response times
    // (the log write is the only commit I/O under NOFORCE).
    let disk_log = debit_credit_run(DebitCreditRun::baseline(2, quick()));
    let gem_log = debit_credit_run(DebitCreditRun {
        log: LogStorage::Gem,
        ..DebitCreditRun::baseline(2, quick())
    });
    let gain = disk_log.mean_response_ms - gem_log.mean_response_ms;
    assert!(
        (4.0..10.0).contains(&gain),
        "expected ~6.4 ms log-delay gain, got {gain} ({} vs {})",
        disk_log.mean_response_ms,
        gem_log.mean_response_ms
    );
}

#[test]
fn force_approaches_noforce_with_all_writes_in_gem() {
    // §2 cites [Ra92a]: "FORCE can approach the performance of NOFORCE
    // when the force-writes go to non-volatile semiconductor memory."
    // With BRANCH/TELLER in GEM, HISTORY and ACCOUNT behind GEM write
    // buffers, and the log in GEM, the entire FORCE commit costs
    // microseconds.
    let mk = |update, bt, log| {
        let mut run = DebitCreditRun {
            update,
            buffer: 1_000,
            bt,
            log,
            ..DebitCreditRun::baseline(4, quick())
        };
        run.routing = RoutingStrategy::Affinity;
        let mut report = None;
        // HISTORY/ACCOUNT write buffers are not part of DebitCreditRun;
        // build the config manually for the FORCE case.
        if update == UpdateStrategy::Force {
            let tps = 100.0;
            let mut cfg = SystemConfig::debit_credit(run.nodes);
            cfg.update = update;
            cfg.buffer_pages_per_node = run.buffer;
            cfg.log_storage = log;
            cfg.run.warmup_txns = run.run.warmup;
            cfg.run.measured_txns = run.run.measured;
            let dc = DebitCredit::new(run.nodes, tps);
            let wl = DebitCreditWorkload::new(dc, tps, run.routing);
            cfg.partitions = dbshare::workload::Workload::partitions(&wl).to_vec();
            use dbshare::model::StorageAllocation;
            cfg.partitions[0].storage = StorageAllocation::Gem; // B/T
            for idx in [1usize, 2] {
                // ACCOUNT, HISTORY: disks with GEM write buffers
                let disks = match cfg.partitions[idx].storage {
                    StorageAllocation::Disk { disks } => disks,
                    _ => unreachable!("debit-credit defaults to disks"),
                };
                cfg.partitions[idx].storage = StorageAllocation::WriteBufferedDisk {
                    disks,
                    buffer_pages: 4_096,
                };
            }
            report = Some(Engine::new(cfg, Box::new(wl)).expect("valid").run());
        }
        report.unwrap_or_else(|| debit_credit_run(run))
    };
    let noforce = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::NoForce,
        buffer: 1_000,
        log: LogStorage::Gem,
        ..DebitCreditRun::baseline(4, quick())
    });
    let force_gem = mk(UpdateStrategy::Force, BtStorage::Gem, LogStorage::Gem);
    // On disk the FORCE penalty is huge (>100 ms); with every write in
    // non-volatile semiconductor memory it collapses to the CPU cost of
    // the four sequential I/O initiations (~a few ms of queueing at 65%
    // CPU utilization) — "approaching" NOFORCE, as [Ra92a] reports.
    assert!(
        force_gem.mean_response_ms < noforce.mean_response_ms + 12.0,
        "FORCE-all-GEM {} should approach NOFORCE {}",
        force_gem.mean_response_ms,
        noforce.mean_response_ms
    );
}

#[test]
fn gem_write_buffer_speeds_up_force_like_an_nv_cache() {
    // §2 usage form 2: a small non-volatile GEM write buffer absorbs
    // the force-write; reads still mostly go to disk.
    let disk = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::Force,
        buffer: 1_000,
        ..DebitCreditRun::baseline(4, quick())
    });
    let wb = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::Force,
        buffer: 1_000,
        bt: BtStorage::GemWriteBuffer,
        ..DebitCreditRun::baseline(4, quick())
    });
    assert!(
        wb.mean_response_ms < disk.mean_response_ms - 8.0,
        "write buffer {} vs disk {}",
        wb.mean_response_ms,
        disk.mean_response_ms
    );
}

#[test]
fn gem_page_transfers_relieve_the_network() {
    // §6: "Using GEM for implementing the page transfers would also
    // improve coherency control performance for NOFORCE."
    let net = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        buffer: 1_000,
        ..DebitCreditRun::baseline(8, quick())
    });
    let gem = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        buffer: 1_000,
        transfer: PageTransferMode::Gem,
        ..DebitCreditRun::baseline(8, quick())
    });
    // Pages stop crossing the wire: network utilization drops hard.
    assert!(
        gem.network_utilization < net.network_utilization * 0.4,
        "network util {} vs {}",
        gem.network_utilization,
        net.network_utilization
    );
    // and response time stays competitive
    assert!(
        gem.mean_response_ms < net.mean_response_ms * 1.05,
        "gem {} vs network {}",
        gem.mean_response_ms,
        net.mean_response_ms
    );
}

#[test]
fn central_lock_engine_saturates_where_gem_does_not() {
    // §5 on [Yu87]: "lock service times between 100 and 500 µs were
    // assumed so that much smaller transaction rates than with GEM
    // locking could be supported." At 300 µs/op a single lock engine
    // saturates inside the paper's node range; GEM stays below 3%.
    use dbshare::model::CouplingMode;
    use dbshare::prelude::experiments::debit_credit_run_with;
    let gem = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        ..DebitCreditRun::baseline(6, quick())
    });
    let engine = debit_credit_run_with(
        DebitCreditRun {
            coupling: CouplingMode::LockEngine,
            routing: RoutingStrategy::Random,
            ..DebitCreditRun::baseline(6, quick())
        },
        |cfg| cfg.lock_engine.op_service_us = 300.0,
    );
    assert!(gem.gem_utilization < 0.03, "{}", gem.gem_utilization);
    assert!(
        engine.lock_engine_utilization > 0.85,
        "engine util {}",
        engine.lock_engine_utilization
    );
    assert!(
        engine.mean_response_ms > gem.mean_response_ms * 2.0,
        "engine {} vs GEM {}",
        engine.mean_response_ms,
        gem.mean_response_ms
    );
}

#[test]
fn clustering_saves_a_page_access_and_a_lock() {
    // §3.1: clustering TELLER records with their BRANCH record "reduces
    // the number of page accesses per transaction to three [...] for
    // page-locking the number of locks per transaction is also reduced
    // by one".
    let clustered = debit_credit_run(DebitCreditRun::baseline(2, quick()));
    let unclustered = debit_credit_run(DebitCreditRun {
        clustered: false,
        ..DebitCreditRun::baseline(2, quick())
    });
    assert!((clustered.lock_requests_per_txn - 2.0).abs() < 0.05);
    assert!((unclustered.lock_requests_per_txn - 3.0).abs() < 0.05);
    // the CPU path length is the same 4 record accesses either way
    let cpu_diff = (unclustered.cpu_service_ms - clustered.cpu_service_ms).abs();
    assert!(cpu_diff < 1.0, "cpu {cpu_diff}");
    // but the extra page access costs an extra (possible) miss
    assert!(
        unclustered.mean_response_ms >= clustered.mean_response_ms - 1.0,
        "unclustered {} vs clustered {}",
        unclustered.mean_response_ms,
        clustered.mean_response_ms
    );
}

#[test]
fn central_lock_manager_is_unbalanced_and_slower_than_pcl() {
    // [Ra91b] baseline: a message-based central lock manager on node 0
    // concentrates the whole system's lock-processing CPU there, while
    // PCL's partitioned authority (with affinity) keeps locking local
    // and the nodes balanced.
    use dbshare::model::CouplingMode;
    let pcl = debit_credit_run(DebitCreditRun {
        coupling: CouplingMode::Pcl,
        ..DebitCreditRun::baseline(4, quick())
    });
    let central = debit_credit_run(DebitCreditRun {
        coupling: CouplingMode::Pcl,
        central_lock_manager: true,
        ..DebitCreditRun::baseline(4, quick())
    });
    // node 0 carries everyone's lock processing: visible imbalance
    assert!(
        central.cpu_utilization_max > central.cpu_utilization + 0.05,
        "central LM should be unbalanced: avg {} max {}",
        central.cpu_utilization,
        central.cpu_utilization_max
    );
    assert!(
        pcl.cpu_utilization_max < pcl.cpu_utilization + 0.03,
        "partitioned PCL stays balanced: avg {} max {}",
        pcl.cpu_utilization,
        pcl.cpu_utilization_max
    );
    // and locks are mostly remote: ~1/N local
    let local = central.local_lock_fraction.expect("PCL");
    assert!((local - 0.25).abs() < 0.05, "central local share {local}");
    assert!(
        central.mean_response_ms > pcl.mean_response_ms + 2.0,
        "central {} vs partitioned {}",
        central.mean_response_ms,
        pcl.mean_response_ms
    );
}
