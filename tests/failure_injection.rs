//! Failure-injection tests (reproduction extension): a node crash with
//! log-based recovery, quantifying the §1 availability argument — the
//! non-volatile GEM preserves the global lock table across a crash,
//! while a loosely coupled node's lock-authority state is volatile.

use dbshare::model::{CouplingMode, CrashConfig, RoutingStrategy, SystemConfig};
use dbshare::prelude::*;
use dbshare::workload::Workload;

fn run_with_crash(coupling: CouplingMode, crash: Option<CrashConfig>) -> RunReport {
    let tps = 100.0;
    let nodes = 4;
    let mut cfg = SystemConfig::debit_credit(nodes);
    cfg.coupling = coupling;
    cfg.routing = RoutingStrategy::Random;
    cfg.crash = crash;
    cfg.run.warmup_txns = 400;
    cfg.run.measured_txns = 4_000;
    let dc = DebitCredit::new(nodes, tps);
    let wl = DebitCreditWorkload::new(dc, tps, RoutingStrategy::Random);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid").run()
}

fn crash_at_3s() -> Option<CrashConfig> {
    Some(CrashConfig {
        node: 1,
        at_secs: 3.0,
        recovery_secs: 2.0,
    })
}

#[test]
fn crashed_runs_complete_under_both_protocols() {
    for coupling in [CouplingMode::GemLocking, CouplingMode::Pcl] {
        let r = run_with_crash(coupling, crash_at_3s());
        assert_eq!(r.measured_txns, 4_000, "{coupling:?}");
        assert!(!r.truncated);
        assert!(r.crash_aborts > 0, "{coupling:?}: some work must be killed");
        // no residual hangs: the timeout safety net stays silent
        assert_eq!(r.timeout_aborts, 0, "{coupling:?}");
    }
}

#[test]
fn survivors_absorb_the_load_during_downtime() {
    let r = run_with_crash(CouplingMode::GemLocking, crash_at_3s());
    // The crashed node worked for ~3 of ~10 simulated seconds (plus
    // post-recovery): its utilization is visibly below the survivors'.
    let crashed = r.cpu_utilization_per_node[1];
    let surviving = r.cpu_utilization_per_node[0];
    assert!(
        crashed < surviving * 0.85,
        "crashed node {crashed} vs survivor {surviving}"
    );
    // total throughput is still delivered (open system, re-routing)
    assert!(
        (r.throughput_tps - 400.0).abs() < 20.0,
        "{}",
        r.throughput_tps
    );
}

#[test]
fn gem_loses_less_work_than_pcl_on_a_crash() {
    // GEM locking: only the crashed node's own transactions die (the
    // GLT lives in non-volatile GEM). PCL: additionally every
    // transaction with lock state at the dead node's authority dies —
    // with random routing that is roughly the whole system's active set.
    let gem = run_with_crash(CouplingMode::GemLocking, crash_at_3s());
    let pcl = run_with_crash(CouplingMode::Pcl, crash_at_3s());
    assert!(
        pcl.crash_aborts > gem.crash_aborts,
        "PCL kills more: {} vs GEM {}",
        pcl.crash_aborts,
        gem.crash_aborts
    );
}

#[test]
fn crash_free_baseline_is_unaffected_by_the_feature() {
    let with = run_with_crash(CouplingMode::GemLocking, None);
    assert_eq!(with.crash_aborts, 0);
    assert!(with.cpu_utilization_per_node.iter().all(|&u| u > 0.5));
}

#[test]
fn config_validation_guards_crash_parameters() {
    let mut cfg = SystemConfig::debit_credit(2);
    cfg.partitions.push(dbshare::model::PartitionConfig {
        name: "P".into(),
        pages: 10,
        locking: true,
        storage: dbshare::model::StorageAllocation::disk(1),
    });
    cfg.crash = Some(CrashConfig {
        node: 5,
        at_secs: 1.0,
        recovery_secs: 1.0,
    });
    assert!(cfg.validate().is_err(), "node out of range");
    cfg.crash = Some(CrashConfig {
        node: 0,
        at_secs: 1.0,
        recovery_secs: 0.0,
    });
    assert!(cfg.validate().is_err(), "zero recovery");
    let mut single = SystemConfig::debit_credit(1);
    single.partitions = cfg.partitions.clone();
    single.crash = Some(CrashConfig {
        node: 0,
        at_secs: 1.0,
        recovery_secs: 1.0,
    });
    assert!(single.validate().is_err(), "only node");
}
