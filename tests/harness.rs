//! Tests of the experiment harness itself: presets build the intended
//! configurations, the throughput-at-utilization search agrees with
//! the extrapolated Fig. 4.6 metric, and replication intervals behave.

use dbshare::prelude::experiments::{find_tps_at_cpu, replicate, Series};
use dbshare::prelude::*;

fn quick() -> RunLength {
    RunLength {
        warmup: 300,
        measured: 2_000,
    }
}

#[test]
fn fig_presets_produce_the_right_curves() {
    let nodes = [1u16, 2];
    let run = RunLength {
        warmup: 50,
        measured: 300,
    };
    let check = |series: Vec<Series>, expect_curves: usize| {
        assert_eq!(series.len(), expect_curves);
        for s in &series {
            assert_eq!(s.points.len(), nodes.len(), "{}", s.label);
            assert!(s.at(1).is_some() && s.at(2).is_some());
            assert!(s.at(3).is_none());
            for (_, r) in &s.points {
                assert_eq!(r.measured_txns, run.measured);
            }
        }
    };
    check(experiments::fig41(&nodes, run), 4);
    check(experiments::fig42(&nodes, run), 4);
    check(experiments::fig43(&nodes, run), 8);
    check(experiments::fig44(&nodes, run), 8);
    check(experiments::fig45(&nodes, run), 16);
    check(experiments::fig46(&nodes, run), 8);
    check(experiments::lock_engine_comparison(&nodes, run), 4);
}

#[test]
fn table41_lists_every_headline_parameter() {
    let t = experiments::table41();
    for needle in [
        "100 TPS",
        "250000 instructions",
        "4 processors x 10 MIPS",
        "50 us/page, 2 us/entry",
        "5000/8000 instr",
        "15 ms DB disks, 5 ms log disks",
        "controller 1 ms, transfer 0.4 ms",
    ] {
        assert!(t.contains(needle), "missing {needle:?} in:\n{t}");
    }
}

#[test]
fn tps_search_agrees_with_the_extrapolated_metric() {
    // The Fig. 4.6 metric extrapolates from one run's utilization; the
    // bisection search actually simulates at each probe rate. They must
    // agree within a few percent (per-transaction CPU cost is nearly
    // load-independent).
    let p = DebitCreditRun {
        buffer: 1_000,
        ..DebitCreditRun::baseline(2, quick())
    };
    let extrapolated = debit_credit_run(p).tps_per_node_at_80pct_cpu;
    let searched = find_tps_at_cpu(p, 0.8, 7);
    let rel = (searched - extrapolated).abs() / extrapolated;
    assert!(
        rel < 0.06,
        "search {searched:.1} vs extrapolation {extrapolated:.1} ({rel:.3})"
    );
    // and both land in a plausible band for a 40-MIPS node
    assert!((100.0..150.0).contains(&searched), "{searched}");
}

#[test]
fn replication_interval_covers_the_seed_spread() {
    let p = DebitCreditRun::baseline(2, quick());
    let rep = replicate(p, &[1, 2, 3, 4]);
    assert_eq!(rep.runs.len(), 4);
    assert!(rep.response_ci95_ms > 0.0);
    // every individual mean lies within a few half-widths
    for r in &rep.runs {
        assert!(
            (r.mean_response_ms - rep.mean_response_ms).abs() < 4.0 * rep.response_ci95_ms + 1.0,
            "outlier run {} vs mean {} ± {}",
            r.mean_response_ms,
            rep.mean_response_ms,
            rep.response_ci95_ms
        );
    }
    // and the within-run batch-means CI roughly matches the
    // across-replication spread (same steady state)
    let within = rep.runs[0].response_ci95_ms.expect("batches");
    assert!(within < 3.0, "batch CI {within}");
}
