//! Integration tests asserting the paper's §4.1–§4.5 findings for the
//! debit-credit workload, on shortened (but statistically adequate)
//! runs. Each test cites the claim it checks.

use dbshare::prelude::*;

fn quick() -> RunLength {
    RunLength {
        warmup: 400,
        measured: 2_500,
    }
}

fn base(nodes: u16) -> DebitCreditRun {
    DebitCreditRun::baseline(nodes, quick())
}

fn bt_hits(r: &RunReport) -> f64 {
    r.hit_ratio("BRANCH/TELLER").expect("B/T partition exists")
}

#[test]
fn central_case_matches_table_41_predictions() {
    // §4.1/§4.2: at 100 TPS and buffer 200, the central case shows a
    // ~71% BRANCH/TELLER hit ratio, ≥62.5% CPU utilization, a 95%
    // HISTORY hit ratio, and no ACCOUNT rereference locality.
    let r = debit_credit_run(base(1));
    assert!(
        (0.64..0.78).contains(&bt_hits(&r)),
        "B/T hits {}",
        bt_hits(&r)
    );
    let hist = r.hit_ratio("HISTORY").expect("history");
    assert!((0.93..0.97).contains(&hist), "HISTORY hits {hist}");
    let acct = r.hit_ratio("ACCOUNT").expect("account");
    assert!(acct < 0.02, "ACCOUNT hits {acct}");
    assert!(
        (0.60..0.75).contains(&r.cpu_utilization),
        "cpu {}",
        r.cpu_utilization
    );
    // throughput matches the offered 100 TPS (open system, stable)
    assert!(
        (95.0..105.0).contains(&r.throughput_tps),
        "{}",
        r.throughput_tps
    );
    assert_eq!(r.deadlock_aborts, 0, "debit-credit cannot deadlock");
    assert_eq!(r.timeout_aborts, 0);
}

#[test]
fn random_routing_degrades_bt_hit_ratio_with_nodes() {
    // §4.2: random routing drops B/T hit ratios from 71% (central) to
    // ~13% at 5 nodes because the same pages are redundantly cached and
    // invalidated in every node.
    let r1 = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        ..base(1)
    });
    let r5 = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        ..base(5)
    });
    assert!(bt_hits(&r1) > 0.6, "central {}", bt_hits(&r1));
    assert!(bt_hits(&r5) < 0.25, "5 nodes {}", bt_hits(&r5));
    assert!(
        r5.invalidations_per_txn > 0.01,
        "{}",
        r5.invalidations_per_txn
    );
}

#[test]
fn affinity_routing_preserves_central_hit_ratio() {
    // §4.2: with affinity routing B/T references are fully partitioned,
    // so every configuration shows the same hit ratio as one node.
    let r1 = debit_credit_run(base(1));
    let r8 = debit_credit_run(base(8));
    assert!(
        (bt_hits(&r8) - bt_hits(&r1)).abs() < 0.06,
        "central {} vs 8 nodes {}",
        bt_hits(&r1),
        bt_hits(&r8)
    );
    assert!(r8.invalidations_per_txn < 0.01);
    // response time stays nearly constant despite 8× throughput
    assert!(
        r8.mean_response_ms < r1.mean_response_ms * 1.15,
        "{} vs {}",
        r1.mean_response_ms,
        r8.mean_response_ms
    );
}

#[test]
fn force_is_slower_than_noforce_on_disk() {
    // §4.2: FORCE suffers the commit force-write delays; NOFORCE only
    // writes the log.
    let force = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::Force,
        ..base(4)
    });
    let noforce = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::NoForce,
        ..base(4)
    });
    assert!(
        force.mean_response_ms > noforce.mean_response_ms + 50.0,
        "FORCE {} vs NOFORCE {}",
        force.mean_response_ms,
        noforce.mean_response_ms
    );
    // FORCE writes every modified page at commit (3 pages + log)
    assert!(
        (3.5..4.5).contains(&force.writes_per_txn),
        "{}",
        force.writes_per_txn
    );
    assert!(
        (0.9..1.1).contains(&noforce.writes_per_txn),
        "{}",
        noforce.writes_per_txn
    );
}

#[test]
fn gem_utilization_stays_negligible_at_full_scale() {
    // §4.2: "Even for 1000 TPS (10 nodes) GEM utilization was less than
    // 2% so that no significant queuing delays occurred." Our protocol
    // also clears page ownership in the GLT after write-backs, so we
    // land marginally above (~2.2%) — still negligible.
    let r = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        ..base(10)
    });
    assert!(r.gem_utilization < 0.025, "GEM util {}", r.gem_utilization);
}

#[test]
fn page_requests_beat_disk_reads_under_noforce() {
    // §4.2 footnote 2: a page request is served in ~6.5 ms, far below
    // the 16.4 ms disk access, and NOFORCE exploits this for B/T misses.
    let r = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        update: UpdateStrategy::NoForce,
        ..base(8)
    });
    assert!(r.page_requests_per_txn > 0.2, "{}", r.page_requests_per_txn);
    assert!(
        r.page_req_delay_ms < 16.4,
        "page request delay {} not below disk",
        r.page_req_delay_ms
    );
}

#[test]
fn larger_buffer_helps_noforce_more_than_force_under_random_routing() {
    // §4.3 / Fig. 4.2: with buffer 1000 almost all B/T misses are
    // served by page requests under NOFORCE, while FORCE still pays a
    // disk read per miss/invalidation.
    let mk = |update, buffer| {
        debit_credit_run(DebitCreditRun {
            routing: RoutingStrategy::Random,
            update,
            buffer,
            ..base(8)
        })
    };
    let force_small = mk(UpdateStrategy::Force, 200);
    let force_big = mk(UpdateStrategy::Force, 1_000);
    let noforce_small = mk(UpdateStrategy::NoForce, 200);
    let noforce_big = mk(UpdateStrategy::NoForce, 1_000);
    let force_gain = force_small.mean_response_ms - force_big.mean_response_ms;
    let noforce_gain = noforce_small.mean_response_ms - noforce_big.mean_response_ms;
    assert!(
        noforce_gain > force_gain - 2.0,
        "noforce gain {noforce_gain} vs force gain {force_gain}"
    );
    // the larger buffer raises the page-request share under NOFORCE
    assert!(
        noforce_big.page_requests_per_txn >= noforce_small.page_requests_per_txn * 0.9,
        "{} vs {}",
        noforce_big.page_requests_per_txn,
        noforce_small.page_requests_per_txn
    );
}

#[test]
fn gem_allocation_rescues_force_under_random_routing() {
    // §4.4 / Fig. 4.3b: allocating BRANCH/TELLER to GEM removes the
    // miss/invalidation penalty for FORCE — random routing approaches
    // affinity routing and the central case.
    let disk = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        update: UpdateStrategy::Force,
        buffer: 1_000,
        bt: BtStorage::Disk,
        ..base(8)
    });
    let gem = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        update: UpdateStrategy::Force,
        buffer: 1_000,
        bt: BtStorage::Gem,
        ..base(8)
    });
    let central = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::Force,
        buffer: 1_000,
        bt: BtStorage::Gem,
        ..base(1)
    });
    assert!(
        gem.mean_response_ms < disk.mean_response_ms - 20.0,
        "GEM {} vs disk {}",
        gem.mean_response_ms,
        disk.mean_response_ms
    );
    assert!(
        gem.mean_response_ms < central.mean_response_ms * 1.08,
        "no significant increase over central: {} vs {}",
        gem.mean_response_ms,
        central.mean_response_ms
    );
}

#[test]
fn gem_allocation_barely_helps_noforce() {
    // §4.4 / Fig. 4.3a: under NOFORCE with buffer 1000 the GEM
    // allocation has almost no effect (misses are already served by
    // page requests / there are no I/Os to save).
    for routing in [RoutingStrategy::Random, RoutingStrategy::Affinity] {
        let disk = debit_credit_run(DebitCreditRun {
            routing,
            buffer: 1_000,
            bt: BtStorage::Disk,
            ..base(6)
        });
        let gem = debit_credit_run(DebitCreditRun {
            routing,
            buffer: 1_000,
            bt: BtStorage::Gem,
            ..base(6)
        });
        let diff = (disk.mean_response_ms - gem.mean_response_ms).abs();
        assert!(
            diff < disk.mean_response_ms * 0.12,
            "{routing:?}: disk {} vs gem {}",
            disk.mean_response_ms,
            gem.mean_response_ms
        );
    }
}

#[test]
fn disk_cache_ordering_matches_fig_44() {
    // §4.4 / Fig. 4.4 (FORCE, buffer 1000, random routing): plain disk
    // is worst; a volatile cache saves the read misses; a non-volatile
    // cache additionally absorbs the force-write; GEM is best.
    let mk = |bt| {
        debit_credit_run(DebitCreditRun {
            routing: RoutingStrategy::Random,
            update: UpdateStrategy::Force,
            buffer: 1_000,
            bt,
            ..base(8)
        })
        .mean_response_ms
    };
    let disk = mk(BtStorage::Disk);
    let volatile = mk(BtStorage::VolatileCache);
    let nv = mk(BtStorage::NvCache);
    let gem = mk(BtStorage::Gem);
    assert!(volatile < disk, "volatile {volatile} !< disk {disk}");
    assert!(nv < volatile, "nv {nv} !< volatile {volatile}");
    assert!(gem <= nv + 3.0, "gem {gem} vs nv {nv}");
}

#[test]
fn volatile_cache_useless_for_affinity_routing() {
    // §4.4: "For affinity-based routing, a volatile disk cache is not
    // useful because no main memory misses occur on BRANCH/TELLER for
    // the chosen buffer size."
    let disk = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::Force,
        buffer: 1_000,
        bt: BtStorage::Disk,
        ..base(6)
    });
    let volatile = debit_credit_run(DebitCreditRun {
        update: UpdateStrategy::Force,
        buffer: 1_000,
        bt: BtStorage::VolatileCache,
        ..base(6)
    });
    assert!(
        (disk.mean_response_ms - volatile.mean_response_ms).abs() < 3.0,
        "disk {} vs volatile {}",
        disk.mean_response_ms,
        volatile.mean_response_ms
    );
}

#[test]
fn pcl_matches_gem_locking_under_affinity_routing() {
    // §4.5: "in the case of affinity-based routing, PCL always achieved
    // virtually the same response times as GEM locking" — nearly all
    // lock requests are local.
    let gem = debit_credit_run(base(8));
    let pcl = debit_credit_run(DebitCreditRun {
        coupling: CouplingMode::Pcl,
        ..base(8)
    });
    assert!(
        (pcl.mean_response_ms - gem.mean_response_ms).abs() < gem.mean_response_ms * 0.08,
        "PCL {} vs GEM {}",
        pcl.mean_response_ms,
        gem.mean_response_ms
    );
    let local = pcl.local_lock_fraction.expect("PCL reports local share");
    assert!(local > 0.85, "local share {local}");
}

#[test]
fn pcl_local_share_is_one_over_n_for_random_routing() {
    // §4.5: "While 50% of the lock requests could be locally processed
    // for two nodes with PCL, this share is reduced to 10% in the case
    // of 10 nodes."
    for (nodes, expect) in [(2u16, 0.5), (10, 0.1)] {
        let r = debit_credit_run(DebitCreditRun {
            coupling: CouplingMode::Pcl,
            routing: RoutingStrategy::Random,
            ..base(nodes)
        });
        let local = r.local_lock_fraction.expect("PCL");
        assert!(
            (local - expect).abs() < 0.05,
            "{nodes} nodes: local {local} expect {expect}"
        );
    }
}

#[test]
fn pcl_is_worse_than_gem_locking_for_random_routing_and_grows() {
    // §4.5: "PCL is always worse than GEM locking because of the
    // communication overhead [...] leading to increasing response time
    // differences."
    let gap = |nodes| {
        let gem = debit_credit_run(DebitCreditRun {
            routing: RoutingStrategy::Random,
            ..base(nodes)
        });
        let pcl = debit_credit_run(DebitCreditRun {
            coupling: CouplingMode::Pcl,
            routing: RoutingStrategy::Random,
            ..base(nodes)
        });
        pcl.mean_response_ms - gem.mean_response_ms
    };
    let g2 = gap(2);
    let g10 = gap(10);
    assert!(g2 > 0.0, "gap at 2 nodes {g2}");
    assert!(g10 > g2, "gap should grow: {g2} -> {g10}");
}

#[test]
fn fig_46_pcl_random_throughput_about_15_percent_lower() {
    // §4.5 / Fig. 4.6: "With random routing, the maximal throughput is
    // about 15% lower for the message-based PCL protocol compared to
    // close coupling."
    let gem = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        buffer: 1_000,
        ..base(8)
    });
    let pcl = debit_credit_run(DebitCreditRun {
        coupling: CouplingMode::Pcl,
        routing: RoutingStrategy::Random,
        buffer: 1_000,
        ..base(8)
    });
    let ratio = pcl.tps_per_node_at_80pct_cpu / gem.tps_per_node_at_80pct_cpu;
    assert!(
        (0.78..0.95).contains(&ratio),
        "PCL/GEM throughput ratio {ratio}"
    );
}

#[test]
fn fig_46_affinity_routing_scales_linearly() {
    // §4.5: "For affinity-based routing there is almost no
    // communication overhead permitting a linear throughput increase."
    let t1 = debit_credit_run(DebitCreditRun {
        buffer: 1_000,
        ..base(1)
    })
    .tps_per_node_at_80pct_cpu;
    let t10 = debit_credit_run(DebitCreditRun {
        buffer: 1_000,
        ..base(10)
    })
    .tps_per_node_at_80pct_cpu;
    assert!(
        (t10 - t1).abs() < t1 * 0.06,
        "per-node throughput not flat: {t1} vs {t10}"
    );
}

#[test]
fn gem_page_transfer_mode_works() {
    // §6 extension: exchanging pages through GEM instead of the network
    // still completes and keeps the page-request delay low.
    let net = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        buffer: 1_000,
        ..base(6)
    });
    let gem = debit_credit_run(DebitCreditRun {
        routing: RoutingStrategy::Random,
        buffer: 1_000,
        transfer: dbshare::model::PageTransferMode::Gem,
        ..base(6)
    });
    assert!(gem.page_requests_per_txn > 0.2);
    assert!(
        (gem.mean_response_ms - net.mean_response_ms).abs() < net.mean_response_ms * 0.1,
        "gem transfer {} vs network {}",
        gem.mean_response_ms,
        net.mean_response_ms
    );
}
