//! Integration tests for the §4.6 real-life (synthetic trace) workload
//! findings. These runs are heavier than the debit-credit tests, so
//! they use short measurement windows; the shapes they assert are
//! robust to that.

use dbshare::prelude::*;

fn quick() -> RunLength {
    RunLength {
        warmup: 300,
        measured: 2_000,
    }
}

fn run(nodes: u16, coupling: CouplingMode, routing: RoutingStrategy) -> RunReport {
    trace_run(TraceRun {
        nodes,
        coupling,
        routing,
        read_optimization: true,
        run: quick(),
        seed: 0xDB5_4A6E,
    })
}

#[test]
fn trace_statistics_match_the_paper() {
    // §4.6's description of the trace, reproduced by the synthesizer.
    let t = Trace::synthesize(&TraceGenConfig::default(), 0xDB5_4A6E);
    let s = t.stats();
    assert!(s.txn_count > 17_500);
    assert_eq!(s.types, 12);
    assert!((900_000..1_150_000).contains(&s.total_refs));
    assert!(s.max_txn_refs > 11_000);
    let wf = s.write_refs as f64 / s.total_refs as f64;
    assert!((0.012..0.020).contains(&wf), "write fraction {wf}");
    let uf = s.update_txns as f64 / s.txn_count as f64;
    assert!((0.17..0.23).contains(&uf), "update txns {uf}");
    assert!((50_000..85_000).contains(&s.distinct_pages));
}

#[test]
fn gem_cpu_utilization_is_moderate_and_balanced() {
    // §4.6: "With GEM locking CPU utilization was balanced and merely
    // about 45% for 50 TPS per node."
    let r = run(4, CouplingMode::GemLocking, RoutingStrategy::Random);
    assert!(
        (0.35..0.55).contains(&r.cpu_utilization),
        "cpu {}",
        r.cpu_utilization
    );
    assert!(
        r.cpu_utilization_max < r.cpu_utilization + 0.05,
        "imbalanced: avg {} max {}",
        r.cpu_utilization,
        r.cpu_utilization_max
    );
}

#[test]
fn pcl_suffers_much_higher_cpu_utilization_under_random_routing() {
    // §4.6: "In the loosely coupled configurations, CPU utilization was
    // substantially higher [...] thereby reducing the achievable
    // throughput."
    let gem = run(4, CouplingMode::GemLocking, RoutingStrategy::Random);
    let pcl = run(4, CouplingMode::Pcl, RoutingStrategy::Random);
    assert!(
        pcl.cpu_utilization > gem.cpu_utilization + 0.2,
        "PCL {} vs GEM {}",
        pcl.cpu_utilization,
        gem.cpu_utilization
    );
    assert!(
        pcl.norm_response_ms > gem.norm_response_ms,
        "PCL {} vs GEM {}",
        pcl.norm_response_ms,
        gem.norm_response_ms
    );
}

#[test]
fn affinity_routing_beats_random_for_the_trace() {
    // §4.6: random routing suffers replicated caching and lower
    // inter-transaction locality; affinity routing preserves locality.
    let random = run(4, CouplingMode::GemLocking, RoutingStrategy::Random);
    let affinity = run(4, CouplingMode::GemLocking, RoutingStrategy::Affinity);
    assert!(
        affinity.reads_per_txn < random.reads_per_txn,
        "affinity reads {} vs random {}",
        affinity.reads_per_txn,
        random.reads_per_txn
    );
    assert!(
        affinity.norm_response_ms < random.norm_response_ms,
        "affinity {} vs random {}",
        affinity.norm_response_ms,
        random.norm_response_ms
    );
}

#[test]
fn aggregate_buffer_growth_helps_affinity_scaling() {
    // §4.6: "With affinity-based routing, we achieved better response
    // times for the closely coupled configurations than in the central
    // case [...] the aggregate buffer size increases while the database
    // size remains constant."
    let central = run(1, CouplingMode::GemLocking, RoutingStrategy::Affinity);
    let eight = run(8, CouplingMode::GemLocking, RoutingStrategy::Affinity);
    assert!(
        eight.reads_per_txn < central.reads_per_txn * 0.85,
        "reads {} vs {}",
        eight.reads_per_txn,
        central.reads_per_txn
    );
    assert!(
        eight.norm_response_ms < central.norm_response_ms * 1.05,
        "8 nodes {} vs central {}",
        eight.norm_response_ms,
        central.norm_response_ms
    );
}

#[test]
fn pcl_local_lock_share_decreases_with_nodes() {
    // §4.6 (with read optimization): local shares fall with the node
    // count for both routings, and affinity stays far above random.
    let a2 = run(2, CouplingMode::Pcl, RoutingStrategy::Affinity)
        .local_lock_fraction
        .expect("PCL");
    let a8 = run(8, CouplingMode::Pcl, RoutingStrategy::Affinity)
        .local_lock_fraction
        .expect("PCL");
    let r8 = run(8, CouplingMode::Pcl, RoutingStrategy::Random)
        .local_lock_fraction
        .expect("PCL");
    assert!(a2 > a8, "affinity share should fall: {a2} -> {a8}");
    assert!(a8 > r8 + 0.2, "affinity {a8} vs random {r8}");
    // random routing with the read optimization: paper reports 33% at 8
    // nodes; raw 1/N would be 12.5%.
    assert!((0.2..0.5).contains(&r8), "random share {r8}");
}

#[test]
fn update_activity_is_too_low_to_matter() {
    // §4.6: "Due to the low update frequency, buffer invalidations as
    // well as lock conflicts had no significant impact on performance."
    let r = run(4, CouplingMode::GemLocking, RoutingStrategy::Random);
    assert!(
        r.invalidations_per_txn < 0.05,
        "{}",
        r.invalidations_per_txn
    );
    assert!(
        r.lock_wait_ms < r.norm_response_ms * 0.05,
        "lock wait {} vs response {}",
        r.lock_wait_ms,
        r.norm_response_ms
    );
    assert_eq!(r.timeout_aborts, 0);
}

#[test]
fn read_optimization_lifts_local_lock_shares() {
    // §4.6: without the optimization the affinity shares are 63% @2 /
    // 35% @8 and random shares are exactly the GLA-alignment fractions;
    // "this optimization allowed a local processing for 78% (65%) of
    // the locks for 2 nodes and 65% (33%) for 8 nodes with affinity
    // (random) routing."
    let share = |nodes, routing, read_optimization| {
        trace_run(TraceRun {
            nodes,
            coupling: CouplingMode::Pcl,
            routing,
            read_optimization,
            run: quick(),
            seed: 0xDB5_4A6E,
        })
        .local_lock_fraction
        .expect("PCL")
    };
    // random routing without the optimization: ~1/N
    let raw_r8 = share(8, RoutingStrategy::Random, false);
    assert!((raw_r8 - 0.125).abs() < 0.04, "raw random @8: {raw_r8}");
    // the optimization lifts it substantially (paper: 12.5% -> 33%)
    let opt_r8 = share(8, RoutingStrategy::Random, true);
    assert!(
        opt_r8 > raw_r8 + 0.1,
        "read opt must lift the share: {raw_r8} -> {opt_r8}"
    );
    // affinity routing benefits too
    let raw_a8 = share(8, RoutingStrategy::Affinity, false);
    let opt_a8 = share(8, RoutingStrategy::Affinity, true);
    assert!(opt_a8 > raw_a8, "{raw_a8} -> {opt_a8}");
    assert!(opt_a8 > opt_r8, "affinity above random");
}
