//! Focused end-to-end tests of the PCL protocol mechanics: grant
//! piggybacking of page versions (NOFORCE update propagation without
//! extra messages, §3.2) and the read-authorization lifecycle of the
//! read optimization ([Ra86]).

use dbshare::desim::Rng;
use dbshare::model::gla::GlaMap;
use dbshare::model::{NodeId, PageId, PartitionId, TxnTypeId};
use dbshare::prelude::*;
use dbshare::workload::Workload;

/// A two-node ping-pong workload: every transaction writes one page of
/// a tiny hot set whose lock authority is entirely on node 0, while
/// transactions alternate between nodes — maximal cross-node update
/// propagation.
struct PingPong {
    partitions: Vec<PartitionConfig>,
    pages: u64,
    cursor: u64,
    rr: u16,
    nodes: u16,
}

impl PingPong {
    fn new(nodes: u16, pages: u64) -> Self {
        PingPong {
            partitions: vec![PartitionConfig {
                name: "HOT".into(),
                pages,
                locking: true,
                storage: StorageAllocation::disk(4),
            }],
            pages,
            cursor: 0,
            rr: 0,
            nodes,
        }
    }
}

impl Workload for PingPong {
    fn next(&mut self, _rng: &mut Rng) -> (NodeId, TxnSpec) {
        let node = NodeId::new(self.rr);
        self.rr = (self.rr + 1) % self.nodes;
        let page = PageId::new(PartitionId::new(0), self.cursor);
        self.cursor = (self.cursor + 1) % self.pages;
        (
            node,
            TxnSpec::new(TxnTypeId::new(0), 0, vec![PageRef::write(page)]),
        )
    }
    fn mean_accesses(&self) -> f64 {
        1.0
    }
    fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }
    fn gla_map(&self) -> GlaMap {
        // Node 0 owns everything: node 1's requests are always remote.
        GlaMap::central(self.nodes, 1)
    }
}

fn run_pingpong(update: UpdateStrategy) -> RunReport {
    let mut cfg = SystemConfig::debit_credit(2);
    cfg.coupling = CouplingMode::Pcl;
    cfg.update = update;
    cfg.arrival_tps_per_node = 25.0;
    cfg.buffer_pages_per_node = 256; // hot set fits everywhere
    cfg.run.warmup_txns = 300;
    cfg.run.measured_txns = 2_000;
    // Odd page count: the round-robin cursor and the alternating node
    // de-correlate, so every page is written by both nodes in turn.
    let wl = PingPong::new(2, 17);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid").run()
}

#[test]
fn noforce_grants_piggyback_pages_instead_of_disk_reads() {
    // §3.2: "the current version of a page can be supplied by the GLA
    // node together with the lock grant message, thereby avoiding extra
    // messages and delays for page requests."
    let r = run_pingpong(UpdateStrategy::NoForce);
    // node 1's copies are invalidated by node 0's writes (and vice
    // versa through the GLA), yet almost nothing is read from disk:
    assert!(r.reads_per_txn < 0.05, "disk reads {}", r.reads_per_txn);
    assert!(
        r.page_transfers_per_txn > 0.3,
        "grant piggybacks {}",
        r.page_transfers_per_txn
    );
    // and never through separate page-request messages (a GEM-locking
    // mechanism):
    assert_eq!(r.page_requests_per_txn, 0.0);
}

#[test]
fn force_needs_no_page_transfers_at_all() {
    // Under FORCE the permanent database is always current: grants stay
    // short and misses read storage.
    let r = run_pingpong(UpdateStrategy::Force);
    assert_eq!(r.page_transfers_per_txn, 0.0, "no piggybacks under FORCE");
    assert!(
        r.reads_per_txn > 0.3,
        "storage serves misses: {}",
        r.reads_per_txn
    );
}

/// Read-heavy workload on a remote authority: node 1 reads a small hot
/// set whose GLA is node 0; occasional writers force revocations.
struct RemoteReaders {
    partitions: Vec<PartitionConfig>,
    pages: u64,
    write_every: u64,
    count: u64,
}

impl Workload for RemoteReaders {
    fn next(&mut self, rng: &mut Rng) -> (NodeId, TxnSpec) {
        self.count += 1;
        let page = PageId::new(PartitionId::new(0), rng.below(self.pages));
        if self.write_every > 0 && self.count.is_multiple_of(self.write_every) {
            // a writer on node 0 (the authority)
            (
                NodeId::new(0),
                TxnSpec::new(TxnTypeId::new(1), 0, vec![PageRef::write(page)]),
            )
        } else {
            // readers on node 1 (always remote without an RA)
            (
                NodeId::new(1),
                TxnSpec::new(TxnTypeId::new(0), 0, vec![PageRef::read(page)]),
            )
        }
    }
    fn mean_accesses(&self) -> f64 {
        1.0
    }
    fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }
    fn gla_map(&self) -> GlaMap {
        GlaMap::central(2, 1)
    }
}

fn run_readers(write_every: u64, read_optimization: bool) -> RunReport {
    let mut cfg = SystemConfig::debit_credit(2);
    cfg.coupling = CouplingMode::Pcl;
    cfg.update = UpdateStrategy::NoForce;
    cfg.pcl_read_optimization = read_optimization;
    cfg.arrival_tps_per_node = 25.0;
    cfg.buffer_pages_per_node = 256;
    cfg.run.warmup_txns = 300;
    cfg.run.measured_txns = 2_000;
    let wl = RemoteReaders {
        partitions: vec![PartitionConfig {
            name: "HOT".into(),
            pages: 8,
            locking: true,
            storage: StorageAllocation::disk(4),
        }],
        pages: 8,
        write_every,
        count: 0,
    };
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid").run()
}

#[test]
fn read_authorizations_make_repeated_remote_reads_local() {
    // Pure readers: after the first remote lock per page, node 1 holds
    // read authorizations and processes everything locally.
    let without = run_readers(0, false);
    let with = run_readers(0, true);
    let l_without = without.local_lock_fraction.expect("PCL");
    let l_with = with.local_lock_fraction.expect("PCL");
    assert!(l_without < 0.05, "no RA: everything remote ({l_without})");
    assert!(l_with > 0.9, "with RA: almost everything local ({l_with})");
    // which is also visible in messages and response time
    assert!(with.messages_per_txn < without.messages_per_txn * 0.2);
    assert!(with.mean_response_ms < without.mean_response_ms);
}

#[test]
fn writers_revoke_authorizations_and_correctness_survives() {
    // One writer per 20 transactions: revocation messages flow, the
    // system stays live, and the local share settles between the
    // extremes.
    let r = run_readers(20, true);
    assert!(r.revokes_per_txn > 0.01, "revokes {}", r.revokes_per_txn);
    let local = r.local_lock_fraction.expect("PCL");
    assert!(
        (0.2..0.98).contains(&local),
        "revocations limit locality: {local}"
    );
    assert_eq!(r.timeout_aborts, 0, "no stuck revocations");
    assert_eq!(r.deadlock_aborts, 0);
}
