//! End-to-end timing calibration: at negligible load (1 TPS on a
//! 40-MIPS node) queueing vanishes and mean response times must match
//! hand-computed sums of the Table 4.1 cost components. These tests
//! pin the engine's accounting: CPU slices, lock-processing overhead,
//! synchronous GEM accesses, disk and log latencies, serial FORCE
//! writes, and PCL message round trips.

use dbshare::desim::Rng;
use dbshare::model::gla::{GlaMap, PartitionGla};
use dbshare::model::{LogStorage, NodeId, PageId, PartitionId, TxnTypeId};
use dbshare::prelude::*;
use dbshare::workload::Workload;

/// A fully scripted workload: every transaction performs the same
/// reference string over one partition; pages are chosen round-robin
/// from a window so hit behaviour is predictable.
struct Scripted {
    nodes: u16,
    window: u64,
    refs: Vec<(bool, bool)>, // (write, append)
    partitions: Vec<PartitionConfig>,
    cursor: u64,
    rr: u16,
}

impl Scripted {
    fn new(nodes: u16, window: u64, refs: Vec<(bool, bool)>, storage: StorageAllocation) -> Self {
        Scripted {
            nodes,
            window,
            refs,
            partitions: vec![PartitionConfig {
                name: "S".into(),
                pages: 1 << 30,
                locking: true,
                storage,
            }],
            cursor: 0,
            rr: 0,
        }
    }
}

impl Workload for Scripted {
    fn next(&mut self, _rng: &mut Rng) -> (NodeId, TxnSpec) {
        let node = NodeId::new(self.rr);
        self.rr = (self.rr + 1) % self.nodes;
        let refs = self
            .refs
            .iter()
            .enumerate()
            .map(|(i, &(write, append))| {
                let page = PageId::new(PartitionId::new(0), (self.cursor + i as u64) % self.window);
                if append {
                    PageRef::append(page)
                } else if write {
                    PageRef::write(page)
                } else {
                    PageRef::read(page)
                }
            })
            .collect();
        self.cursor = (self.cursor + self.refs.len() as u64) % self.window;
        (node, TxnSpec::new(TxnTypeId::new(0), 0, refs))
    }
    fn mean_accesses(&self) -> f64 {
        self.refs.len() as f64
    }
    fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }
    fn gla_map(&self) -> GlaMap {
        GlaMap::new(
            self.nodes,
            vec![PartitionGla::Ranged {
                units: self.nodes as u64,
                unit_pages: (1 << 30) / self.nodes as u64,
            }],
        )
    }
}

/// Runs a scripted workload at 1 TPS per node (no queueing) and
/// returns the report. CPU slice means: BOT 2 ms, access 1 ms
/// (10k instructions), EOT 3 ms.
fn calibrate(
    nodes: u16,
    window: u64,
    refs: Vec<(bool, bool)>,
    storage: StorageAllocation,
    update: UpdateStrategy,
    coupling: CouplingMode,
    log: LogStorage,
) -> RunReport {
    let mut cfg = SystemConfig::debit_credit(nodes);
    cfg.coupling = coupling;
    cfg.update = update;
    cfg.log_storage = log;
    cfg.arrival_tps_per_node = 1.0;
    cfg.cpu.per_access_instr = 10_000.0;
    cfg.buffer_pages_per_node = 4_096;
    cfg.run.warmup_txns = 200;
    cfg.run.measured_txns = 2_000;
    let wl = Scripted::new(nodes, window, refs, storage);
    cfg.partitions = Workload::partitions(&wl).to_vec();
    Engine::new(cfg, Box::new(wl)).expect("valid").run()
}

/// Base CPU path for a 2-reference transaction: BOT 2 + 2×1 + EOT 3 ms.
const CPU_PATH_2REF_MS: f64 = 7.0;
/// One GEM lock operation: 300 instr (0.03 ms) + 2 entries (0.004 ms).
const GEM_LOCK_MS: f64 = 0.034;
/// Disk read/write: 16.4 ms + 0.3 ms I/O-initiation CPU.
const DISK_IO_MS: f64 = 16.7;
/// Log write: 6.4 ms + 0.3 ms initiation.
const LOG_MS: f64 = 6.7;

fn assert_close(actual: f64, expect: f64, tol: f64, what: &str) {
    assert!(
        (actual - expect).abs() < tol,
        "{what}: measured {actual:.2} ms, expected {expect:.2} ± {tol} ms"
    );
}

#[test]
fn read_only_all_hits_costs_only_cpu_and_locks() {
    // 8-page window, 4096-frame buffer: everything hits after warm-up.
    // Expected: CPU path + 2 lock ops (request) + release job
    // (2 × 300 instr + 4 entries ≈ 0.068 ms).
    let r = calibrate(
        1,
        8,
        vec![(false, false), (false, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let expect = CPU_PATH_2REF_MS + 2.0 * GEM_LOCK_MS + 0.068;
    assert_close(r.mean_response_ms, expect, 0.45, "read-only all-hit");
    assert_eq!(r.hit_ratio("S"), Some(1.0));
    assert!(r.reads_per_txn < 0.01);
    assert!(r.writes_per_txn < 0.01, "read-only: no log write");
}

#[test]
fn read_only_all_misses_pay_two_disk_reads() {
    // Window of 1M pages: every reference misses and reads from disk.
    let r = calibrate(
        1,
        1 << 20,
        vec![(false, false), (false, false)],
        StorageAllocation::disk(4),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let expect = CPU_PATH_2REF_MS + 2.0 * GEM_LOCK_MS + 0.068 + 2.0 * DISK_IO_MS;
    assert_close(r.mean_response_ms, expect, 0.6, "read-only all-miss");
    assert!((r.reads_per_txn - 2.0).abs() < 0.01);
}

#[test]
fn noforce_update_adds_exactly_one_log_write() {
    let read_only = calibrate(
        1,
        8,
        vec![(false, false), (false, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let update = calibrate(
        1,
        8,
        vec![(false, false), (true, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    assert_close(
        update.mean_response_ms - read_only.mean_response_ms,
        LOG_MS,
        0.5,
        "NOFORCE log-write delta",
    );
    assert!((update.writes_per_txn - 1.0).abs() < 0.01);
}

#[test]
fn force_writes_are_serial_on_top_of_the_log() {
    // Two modified pages: FORCE pays 2 serial disk writes + the log.
    let noforce = calibrate(
        1,
        8,
        vec![(true, false), (true, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let force = calibrate(
        1,
        8,
        vec![(true, false), (true, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::Force,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    assert_close(
        force.mean_response_ms - noforce.mean_response_ms,
        2.0 * DISK_IO_MS,
        0.8,
        "two serial force-writes",
    );
    // 2 force-writes + 1 log vs 1 log
    assert!((force.writes_per_txn - 3.0).abs() < 0.01);
}

#[test]
fn gem_residence_makes_misses_nearly_free() {
    // All-miss reads served by GEM: 50 µs + 30 µs initiation each.
    let r = calibrate(
        1,
        1 << 20,
        vec![(false, false), (false, false)],
        StorageAllocation::Gem,
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let expect = CPU_PATH_2REF_MS + 2.0 * GEM_LOCK_MS + 0.068 + 2.0 * 0.08;
    assert_close(r.mean_response_ms, expect, 0.45, "GEM-resident misses");
}

#[test]
fn gem_log_saves_the_log_write() {
    let disk_log = calibrate(
        1,
        8,
        vec![(true, false), (false, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let gem_log = calibrate(
        1,
        8,
        vec![(true, false), (false, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Gem,
    );
    // 6.7 ms log write becomes 50 µs GEM write + 30 µs initiation.
    assert_close(
        disk_log.mean_response_ms - gem_log.mean_response_ms,
        LOG_MS - 0.08,
        0.5,
        "GEM log delta",
    );
}

#[test]
fn pcl_remote_lock_round_trip_costs_about_two_milliseconds() {
    // Two nodes; the GLA map splits the window so that node 0 owns the
    // lower half. With round-robin routing and a shared window, about
    // half of all lock requests are remote. Compare against GEM
    // locking on the identical setup: the difference per remote lock is
    // the message round trip (2 × (0.5 send + 0.01 wire + 0.5 recv +
    // 0.03 processing) ≈ 2.07 ms) minus the GEM lock cost.
    let window = 1 << 14;
    let refs = vec![(false, false), (false, false)];
    let gem = calibrate(
        2,
        window,
        refs.clone(),
        StorageAllocation::disk(4),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let pcl = calibrate(
        2,
        window,
        refs,
        StorageAllocation::disk(4),
        UpdateStrategy::NoForce,
        CouplingMode::Pcl,
        LogStorage::Disk,
    );
    let local = pcl.local_lock_fraction.expect("PCL");
    assert!((local - 0.5).abs() < 0.1, "local share {local}");
    // per remote lock: ~2.07 ms round trip; 2 locks/txn, half remote
    let remote_locks = 2.0 * (1.0 - local);
    let expect_delta = remote_locks * 2.07 - 2.0 * GEM_LOCK_MS;
    assert_close(
        pcl.mean_response_ms - gem.mean_response_ms,
        expect_delta,
        0.6,
        "PCL remote round trips",
    );
}

#[test]
fn appends_never_read_storage() {
    let r = calibrate(
        1,
        1 << 20, // huge window: appends would miss if they read
        vec![(false, false), (true, true)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    // one read miss (the plain read), zero for the append
    assert!((r.reads_per_txn - 1.0).abs() < 0.01, "{}", r.reads_per_txn);
}

#[test]
fn response_ci_is_reported_and_tight_at_low_load() {
    let r = calibrate(
        1,
        8,
        vec![(false, false), (false, false)],
        StorageAllocation::disk(2),
        UpdateStrategy::NoForce,
        CouplingMode::GemLocking,
        LogStorage::Disk,
    );
    let ci = r.response_ci95_ms.expect("2000 txns = 10 batches");
    assert!(ci > 0.0 && ci < 0.6, "ci {ci}");
}
